// Package asagen is the public SDK of a reproduction of "Design,
// Implementation and Deployment of State Machines Using a Generative
// Approach" (Kirby, Dearle, Norcross; DSN 2007): a generative
// methodology in which a distributed algorithm whose state space depends
// on a parameter is captured once as an abstract model, from which a
// family of finite state machines — and their textual, diagrammatic,
// documentary and source-code artefacts — are generated.
//
// The facade is Client: it exposes the scenario registry (Models), the
// artefact format registry (Formats), context-aware machine generation
// (Generate), memoised artefact rendering (Render, and the RenderAll /
// Stream iterators), and interpreter execution of generated machines
// (Machine.NewInstance). Generation is reachability-first and memoised
// per model fingerprint: concurrent first requests share one in-flight
// generation, and cancelling a request's context aborts its generation
// promptly without poisoning the cache.
//
// Scenarios are authorable without touching this repository: a
// declarative ModelSpec (states, messages, guarded rules, EFSM
// abstraction hints) compiles into the same abstract-model form the
// built-ins use and registers dynamically — Client.RegisterModel /
// UnregisterModel on the SDK, POST and DELETE on /v1/models over the
// wire, and `fsmgen -spec` on the command line. See the "Authoring your
// own model" section of README.md and examples/customspec.
//
// Failures classify under the package's sentinel errors —
// ErrUnknownModel, ErrUnknownFormat, ErrNoEFSM, ErrStateSpaceOverflow,
// ErrRender, ErrModelExists, ErrInvalidSpec — while keeping the detailed
// messages of the underlying layers.
//
// The same capabilities are served over HTTP by `fsmgen serve` as the
// versioned /v1 API (see API.md). See DESIGN.md for the system
// inventory, EXPERIMENTS.md for the paper-versus-measured record, and
// bench_test.go for the benchmark harness that regenerates the paper's
// evaluation.
package asagen
