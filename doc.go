// Package asagen reproduces "Design, Implementation and Deployment of
// State Machines Using a Generative Approach" (Kirby, Dearle, Norcross;
// DSN 2007): a generative methodology in which a distributed algorithm
// whose state space depends on a parameter is captured once as an abstract
// model, from which a family of finite state machines — and their textual,
// diagrammatic, documentary and source-code artefacts — are generated.
//
// Generation is reachability-first: machines are explored from the start
// state via a deterministic frontier expansion, so cost scales with the
// reachable set rather than the component cross product. Every scenario
// (commit, commit-redundant, consensus, termination) is registered in
// internal/models and selectable by name from all commands via -model.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured record, and bench_test.go for the benchmark
// harness that regenerates the paper's evaluation.
package asagen
