package asagen

import (
	"context"
	"errors"
	"fmt"

	"asagen/internal/artifact"
	"asagen/internal/core"
	"asagen/internal/render"
)

// Sentinel errors classifying SDK failures. Every error returned by the
// package matches at most one of these under errors.Is; context
// cancellation surfaces as context.Canceled / context.DeadlineExceeded.
var (
	// ErrUnknownModel reports a model name absent from the registry. The
	// error message names the registered models.
	ErrUnknownModel = errors.New("asagen: unknown model")
	// ErrUnknownFormat reports an artefact format absent from the
	// registry. The error message names the registered formats.
	ErrUnknownFormat = errors.New("asagen: unknown format")
	// ErrNoEFSM reports an EFSM artefact requested for a model that
	// declares no EFSM generalisation.
	ErrNoEFSM = errors.New("asagen: model declares no EFSM generalisation")
	// ErrStateSpaceOverflow reports a state space whose size exceeds what
	// the generator can address (legacy full enumeration only; the default
	// reachability-first path saturates instead).
	ErrStateSpaceOverflow = errors.New("asagen: state space overflow")
	// ErrRender reports a renderer failure on a well-formed request — a
	// library defect rather than a caller mistake.
	ErrRender = errors.New("asagen: render failed")
	// ErrModelExists reports a RegisterModel call whose spec name is
	// already registered (built-in or dynamic). Unregister the existing
	// model first to replace it.
	ErrModelExists = errors.New("asagen: model already registered")
	// ErrInvalidSpec reports a model spec rejected by compilation. The
	// error message lists every diagnostic with its document path.
	ErrInvalidSpec = errors.New("asagen: invalid model spec")
	// ErrFinished reports a message delivered to an Instance whose
	// machine has already reached its finish state. The state is
	// unchanged; match with errors.Is.
	ErrFinished = errors.New("asagen: machine already finished")
	// ErrBadTrace reports a Check configuration whose trace format or
	// transition pattern is invalid. Undecodable trace content is not an
	// error return — it streams as a VerdictMalformed verdict.
	ErrBadTrace = errors.New("asagen: bad trace")
)

// IgnoredError reports a message that is not applicable in the machine's
// current state: the generated model records no transition for it there
// (guard-rejected or out of vocabulary). The delivery left the state
// unchanged. Match with errors.As to recover the state and message.
type IgnoredError struct {
	// State is the machine state at delivery time.
	State string
	// Message is the inapplicable message type.
	Message string
}

func (e *IgnoredError) Error() string {
	return fmt.Sprintf("asagen: message %s not applicable in state %s", e.Message, e.State)
}

// apiError binds an internal error's message to a public sentinel: Error()
// and Unwrap() expose the detailed cause, while errors.Is matches the
// sentinel.
type apiError struct {
	sentinel error
	cause    error
}

func (e *apiError) Error() string { return e.cause.Error() }

func (e *apiError) Is(target error) bool { return target == e.sentinel }

func (e *apiError) Unwrap() error { return e.cause }

// wrapSentinel attaches sentinel to cause, keeping cause's message.
func wrapSentinel(sentinel, cause error) error {
	return &apiError{sentinel: sentinel, cause: cause}
}

// mapErr classifies an internal-layer error under the package's public
// sentinels. Context errors and unclassified errors (e.g. a model rejecting
// its parameter value) pass through unchanged.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return err
	case errors.Is(err, artifact.ErrUnknownModel):
		return wrapSentinel(ErrUnknownModel, err)
	case errors.Is(err, artifact.ErrUnknownFormat), errors.Is(err, render.ErrUnknownFormat):
		return wrapSentinel(ErrUnknownFormat, err)
	case errors.Is(err, artifact.ErrNoEFSM):
		return wrapSentinel(ErrNoEFSM, err)
	case errors.Is(err, core.ErrStateSpaceOverflow):
		return wrapSentinel(ErrStateSpaceOverflow, err)
	case errors.Is(err, artifact.ErrRender):
		return wrapSentinel(ErrRender, err)
	default:
		return err
	}
}
