package asagen_test

// The benchmark harness regenerates the paper's evaluation (see the
// experiment index in DESIGN.md):
//
//	E1  BenchmarkGenerateTable1       Table 1 generation times per (f, r)
//	E2  BenchmarkRenderText           Fig. 14 textual artefact
//	E3  BenchmarkRenderDot/XML        Fig. 15 diagram artefacts
//	E4  BenchmarkRenderGoSource       Fig. 16 source artefact
//	E5  BenchmarkGenerateEFSM         §5.3 nine-state EFSM generation
//	E6  BenchmarkDelivery*            FSM vs generic vs generated source vs
//	                                  EFSM execution cost (§4.4)
//	E7  BenchmarkCommitRound          full version-service commit round
//	E8  BenchmarkStoreRetrieve        storage quorum write + verified read
//	E9  BenchmarkChordLookup          routing hops vs overlay size
//	E11 BenchmarkPipelineStages       pruning/merging ablation
import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"asagen"
	"asagen/internal/api"
	"asagen/internal/artifact"
	"asagen/internal/chord"
	"asagen/internal/cluster"
	"asagen/internal/commit"
	"asagen/internal/commit/commitfsm4"
	"asagen/internal/consensus"
	"asagen/internal/core"
	"asagen/internal/fleetsim"
	"asagen/internal/models"
	"asagen/internal/render"
	"asagen/internal/runtime"
	"asagen/internal/simnet"
	"asagen/internal/spec"
	"asagen/internal/storage"
	"asagen/internal/termination"
	"asagen/internal/trace"
	"asagen/internal/version"
)

// table1Rows are the published (f, r) pairs of Table 1.
var table1Rows = []struct{ f, r int }{
	{1, 4}, {2, 7}, {4, 13}, {8, 25}, {15, 46},
}

// BenchmarkGenerateTable1 regenerates Table 1's generation-time column: one
// sub-benchmark per published (f, r) pair. State counts are asserted so a
// regression in the model cannot hide in a timing table.
func BenchmarkGenerateTable1(b *testing.B) {
	finals := map[int]int{4: 33, 7: 85, 13: 261, 25: 901, 46: 2945}
	for _, row := range table1Rows {
		b.Run(fmt.Sprintf("f=%d/r=%d", row.f, row.r), func(b *testing.B) {
			model, err := commit.NewModel(row.r)
			if err != nil {
				b.Fatal(err)
			}
			var machine *core.StateMachine
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				machine, err = core.Generate(context.Background(), model, core.WithoutDescriptions())
				if err != nil {
					b.Fatal(err)
				}
			}
			if machine.Stats.FinalStates != finals[row.r] {
				b.Fatalf("final states = %d, want %d", machine.Stats.FinalStates, finals[row.r])
			}
			b.ReportMetric(float64(machine.Stats.InitialStates), "initial-states")
			b.ReportMetric(float64(machine.Stats.FinalStates), "final-states")
		})
	}
}

// BenchmarkGenerateFrontier is the E12 scalability series: the default
// reachability-first frontier exploration against the legacy
// full-enumeration pipeline (WithoutPruning) at large commit parameters,
// plus the parallel frontier expansion. Merging is disabled on both sides
// so the comparison isolates exploration cost; the reachable-state count is
// reported to make the visited-set reduction visible.
func BenchmarkGenerateFrontier(b *testing.B) {
	for _, r := range []int{8, 10, 12} {
		model, err := commit.NewModel(r)
		if err != nil {
			b.Fatal(err)
		}
		configs := []struct {
			name string
			opts []core.Option
		}{
			{"frontier", nil},
			{"frontier-workers-4", []core.Option{core.WithWorkers(4)}},
			{"legacy-enumerate", []core.Option{core.WithoutPruning()}},
		}
		for _, cfg := range configs {
			b.Run(fmt.Sprintf("r=%d/%s", r, cfg.name), func(b *testing.B) {
				opts := append([]core.Option{core.WithoutDescriptions(), core.WithoutMerging()}, cfg.opts...)
				var machine *core.StateMachine
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					machine, err = core.Generate(context.Background(), model, opts...)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(machine.Stats.InitialStates), "initial-states")
				b.ReportMetric(float64(len(machine.States)), "visited-states")
			})
		}
	}
}

// BenchmarkPipelineStages is the E11 ablation: generation cost without
// pruning, without merging, and full, on the redundant reading whose
// machines actually shrink under merging.
func BenchmarkPipelineStages(b *testing.B) {
	configs := []struct {
		name string
		opts []core.Option
	}{
		{"full", nil},
		{"no-merge", []core.Option{core.WithoutMerging()}},
		{"no-prune", []core.Option{core.WithoutPruning()}},
		{"no-prune-no-merge", []core.Option{core.WithoutPruning(), core.WithoutMerging()}},
	}
	model, err := commit.NewModel(13, commit.WithVariant(commit.RedundantVariant()))
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			opts := append([]core.Option{core.WithoutDescriptions()}, cfg.opts...)
			var machine *core.StateMachine
			for i := 0; i < b.N; i++ {
				machine, err = core.Generate(context.Background(), model, opts...)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(machine.Stats.FinalStates), "final-states")
		})
	}
}

func buildCommitMachine(b *testing.B, r int) *core.StateMachine {
	b.Helper()
	model, err := commit.NewModel(r)
	if err != nil {
		b.Fatal(err)
	}
	machine, err := core.Generate(context.Background(), model)
	if err != nil {
		b.Fatal(err)
	}
	return machine
}

// BenchmarkRenderText measures the Fig. 14 textual artefact (E2).
func BenchmarkRenderText(b *testing.B) {
	machine := buildCommitMachine(b, 4)
	r := render.NewTextRenderer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, err := r.Render(machine)
		if err != nil || len(art.Data) == 0 {
			b.Fatal("empty artefact")
		}
	}
}

// BenchmarkRenderDot measures the Fig. 15 DOT artefact (E3).
func BenchmarkRenderDot(b *testing.B) {
	machine := buildCommitMachine(b, 4)
	r := render.NewDotRenderer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, err := r.Render(machine)
		if err != nil || len(art.Data) == 0 {
			b.Fatal("empty artefact")
		}
	}
}

// BenchmarkRenderXML measures the Fig. 15 XML artefact (E3).
func BenchmarkRenderXML(b *testing.B) {
	machine := buildCommitMachine(b, 4)
	r := render.NewXMLRenderer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Render(machine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderGoSource measures the Fig. 16 generated implementation
// (E4), including gofmt formatting.
func BenchmarkRenderGoSource(b *testing.B) {
	machine := buildCommitMachine(b, 4)
	r := render.NewGoSourceRenderer("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Render(machine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateEFSM measures §5.3 EFSM generalisation across models
// (E5).
func BenchmarkGenerateEFSM(b *testing.B) {
	b.Run("commit/r=13", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := commit.GenerateEFSM(context.Background(), 13); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("consensus/n=9", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := consensus.GenerateEFSM(context.Background(), 9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("termination/k=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := termination.GenerateEFSM(context.Background(), 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chord/s=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chord.GenerateEFSM(context.Background(), 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("storage/r=13", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := storage.GenerateEFSM(context.Background(), 13); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerateScenarios measures machine generation for every
// registered scenario at its default parameter — the per-model cost the
// serve path pays on a cache miss. State counts are asserted non-empty so
// a silently degenerate model cannot hide in the timing table.
func BenchmarkGenerateScenarios(b *testing.B) {
	for _, name := range models.Names() {
		b.Run(name, func(b *testing.B) {
			model, err := models.Build(name, 0)
			if err != nil {
				b.Fatal(err)
			}
			var machine *core.StateMachine
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				machine, err = core.Generate(context.Background(), model, core.WithoutDescriptions())
				if err != nil {
					b.Fatal(err)
				}
			}
			if machine.Stats.FinalStates == 0 {
				b.Fatal("empty machine")
			}
			b.ReportMetric(float64(machine.Stats.FinalStates), "final-states")
		})
	}
}

// commitRoundMessages is one uncontended commit round at a member that
// receives the update while free.
var commitRoundMessages = []string{
	commit.MsgFree, commit.MsgUpdate, commit.MsgVote, commit.MsgVote,
	commit.MsgCommit, commit.MsgCommit,
}

// BenchmarkDeliveryInterpreter measures one commit round on the
// interpreted generated machine (E6).
func BenchmarkDeliveryInterpreter(b *testing.B) {
	machine := buildCommitMachine(b, 4)
	inst, err := runtime.New(machine, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Reset()
		for _, msg := range commitRoundMessages {
			if _, err := inst.Deliver(msg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDeliveryGenerated measures one commit round on the generated
// source implementation — the paper's deployed artefact (E6).
func BenchmarkDeliveryGenerated(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := commitfsm4.New(nil)
		for _, msg := range commitRoundMessages {
			m.Receive(msg)
		}
		if !m.Finished() {
			b.Fatal("round did not finish")
		}
	}
}

// BenchmarkDeliveryGeneric measures one commit round on the hand-written
// generic algorithm, the non-FSM baseline the paper expected to be
// comparable (§4.4, E6).
func BenchmarkDeliveryGeneric(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := commit.NewGeneric(4, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, msg := range commitRoundMessages {
			g.Receive(msg)
		}
		if !g.Finished() {
			b.Fatal("round did not finish")
		}
	}
}

// BenchmarkDeliveryEFSM measures one commit round on the nine-state EFSM
// (E6: the intermediate point on the §3.2 spectrum).
func BenchmarkDeliveryEFSM(b *testing.B) {
	efsm, err := commit.GenerateEFSM(context.Background(), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := core.NewEFSMInstance(efsm)
		if err != nil {
			b.Fatal(err)
		}
		for _, msg := range commitRoundMessages {
			inst.Deliver(msg)
		}
		if !inst.Finished() {
			b.Fatal("round did not finish")
		}
	}
}

// BenchmarkCommitRound measures a full version-service append over the
// simulated network — peer-set location, update fan-out, quorum voting,
// commit exchange and client confirmation (E7).
func BenchmarkCommitRound(b *testing.B) {
	for _, r := range []int{4, 7} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			net := simnet.New(1)
			ring, err := chord.Build(1, 4*r)
			if err != nil {
				b.Fatal(err)
			}
			svc, err := version.NewService(context.Background(), net, ring, r)
			if err != nil {
				b.Fatal(err)
			}
			client, err := svc.NewClient("bench-client")
			if err != nil {
				b.Fatal(err)
			}
			guid := storage.NewGUID("bench-file")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pid := storage.ComputePID([]byte(fmt.Sprintf("v%d", i)))
				if err := client.Update(guid, pid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreRetrieve measures the block-storage quorum write and
// hash-verified read (E8).
func BenchmarkStoreRetrieve(b *testing.B) {
	net := simnet.New(1)
	ring, err := chord.Build(1, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range ring.Nodes() {
		id := simnet.NodeID(n.Name())
		if err := net.AddNode(id, storage.NewNode(id, storage.Honest)); err != nil {
			b.Fatal(err)
		}
	}
	endpoint, err := storage.NewEndpoint("bench-client", net, ring, 4)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload[0] = byte(i)
		payload[1] = byte(i >> 8)
		pid, err := endpoint.Store(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := endpoint.Retrieve(pid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChordLookup measures routed lookups across overlay sizes and
// reports the average hop count — the logarithmic-routing series (E9).
func BenchmarkChordLookup(b *testing.B) {
	for _, size := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			ring, err := chord.Build(7, size)
			if err != nil {
				b.Fatal(err)
			}
			nodes := ring.Nodes()
			totalHops := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				from := nodes[i%len(nodes)]
				_, hops, err := from.FindSuccessor(chord.HashString(fmt.Sprintf("key-%d", i)))
				if err != nil {
					b.Fatal(err)
				}
				totalHops += hops
			}
			b.ReportMetric(float64(totalHops)/float64(b.N), "hops/op")
		})
	}
}

// BenchmarkContendedCommit measures commit rounds under two-client
// contention and reports the attempts needed, comparing retry policies
// (the §2.2 deadlock/back-off discussion).
func BenchmarkContendedCommit(b *testing.B) {
	policies := []version.RetryPolicy{
		version.FixedBackoff{Interval: 50 * 1e6},
		version.RandomBackoff{Max: 100 * 1e6},
		version.ExponentialBackoff{Base: 25 * 1e6, Cap: 400 * 1e6},
	}
	for _, policy := range policies {
		b.Run(policy.Name(), func(b *testing.B) {
			net := simnet.New(3)
			ring, err := chord.Build(3, 16)
			if err != nil {
				b.Fatal(err)
			}
			svc, err := version.NewService(context.Background(), net, ring, 4)
			if err != nil {
				b.Fatal(err)
			}
			c1, err := svc.NewClient("c1", version.WithRetryPolicy(policy))
			if err != nil {
				b.Fatal(err)
			}
			c2, err := svc.NewClient("c2", version.WithRetryPolicy(policy))
			if err != nil {
				b.Fatal(err)
			}
			guid := storage.NewGUID("contended")
			attempts := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c1.Update(guid, storage.ComputePID([]byte(fmt.Sprintf("a%d", i)))); err != nil {
					b.Fatal(err)
				}
				attempts += c1.Attempts
				if err := c2.Update(guid, storage.ComputePID([]byte(fmt.Sprintf("b%d", i)))); err != nil {
					b.Fatal(err)
				}
				attempts += c2.Attempts
			}
			b.ReportMetric(float64(attempts)/float64(2*b.N), "attempts/op")
		})
	}
}

// BenchmarkGenerationPolicy compares the §4.2 deployment policies for
// dynamic parameter values: regenerating the machine on every use versus
// memoising generated machines per parameter (the paper's caching
// suggestion).
func BenchmarkGenerationPolicy(b *testing.B) {
	factory := func(parameter int) (core.Model, error) {
		return commit.NewModel(parameter)
	}
	b.Run("regenerate-every-use", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			model, err := commit.NewModel(7)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Generate(context.Background(), model, core.WithoutDescriptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache, err := core.NewCache(factory, core.WithoutDescriptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Machine(context.Background(), 7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRenderAll measures the artefact pipeline over the full
// registry cross product (E13). "cold" includes every machine generation
// and render; "warm" measures the fully memoised batch, the steady state
// of a long-running serve process.
func BenchmarkRenderAll(b *testing.B) {
	reqs := artifact.AllRequests()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := artifact.New()
			for _, res := range p.RenderAll(context.Background(), reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		p := artifact.New()
		for _, res := range p.RenderAll(context.Background(), reqs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range p.RenderAll(context.Background(), reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkCacheHitMiss isolates the fingerprint-keyed generation cache:
// a miss pays model fingerprinting plus a full generation, a hit only the
// fingerprint and the memo lookup.
func BenchmarkCacheHitMiss(b *testing.B) {
	model, err := commit.NewModel(7)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache := core.NewGenerationCache(core.WithoutDescriptions())
			if _, err := cache.MachineFor(context.Background(), model); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		cache := core.NewGenerationCache(core.WithoutDescriptions())
		if _, err := cache.MachineFor(context.Background(), model); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.MachineFor(context.Background(), model); err != nil {
				b.Fatal(err)
			}
		}
		if st := cache.Stats(); st.Generations != 1 {
			b.Fatalf("generations = %d, want 1", st.Generations)
		}
	})
}

// BenchmarkSpecCompile measures the declarative authoring layer: decoding
// and validating the termination-port spec from its JSON wire form (the
// POST /v1/models hot path) and re-compiling the builder form.
func BenchmarkSpecCompile(b *testing.B) {
	data, err := terminationSpec("termination-spec").JSON()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp, err := asagen.ParseModelSpec(data)
			if err != nil {
				b.Fatal(err)
			}
			if err := sp.Compile(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := terminationSpec("termination-spec").Compile(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerateSpecModel compares machine generation through a
// compiled declarative spec against the hand-written adapter it ports, on
// the uncached path — the rule-interpretation overhead of the authoring
// layer.
func BenchmarkGenerateSpecModel(b *testing.B) {
	client := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := client.RegisterModel(terminationSpec("termination-spec")); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, bench := range []struct{ name, model string }{
		{"spec/k=8", "termination-spec"},
		{"adapter/k=8", "termination"},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := client.Generate(ctx, bench.model,
					asagen.WithParam(8), asagen.WithoutCache()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// regenDoc is the incremental-regeneration benchmark model: four bounded
// counters with increment/decrement messages plus a finish rule, so the
// transition function spreads over nine messages and a one-rule edit
// invalidates only one effect column. Each message carries a tail of
// more-specific rules (single-state carve-outs, as large hand-tuned
// protocol specs accumulate), so evaluating the transition function is
// the dominant cost of exploration.
func regenDoc(param int, finishActions []string) spec.Doc {
	d := spec.Doc{
		Name:         "regen-bench",
		DefaultParam: param,
	}
	var when []spec.Cond
	var start []spec.Value
	carveOuts := func(name string) []spec.Rule {
		out := make([]spec.Rule, 0, 56)
		for k := 0; k < 56; k++ {
			out = append(out, spec.Rule{
				Message: name,
				When: []spec.Cond{
					{Component: "c0", Op: spec.OpEq, Value: spec.Lit(k % (param + 1))},
					{Component: "c1", Op: spec.OpEq, Value: spec.Lit((k + 3) % (param + 1))},
					{Component: "c2", Op: spec.OpEq, Value: spec.Lit((k + 5) % (param + 1))},
					{Component: "c3", Op: spec.OpEq, Value: spec.Lit((k + 7) % (param + 1))},
				},
				Actions: []string{fmt.Sprintf("->carve%d", k)},
			})
		}
		return out
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("c%d", i)
		d.Components = append(d.Components, spec.Component{
			Name: name, Kind: spec.KindInt, Max: spec.ParamValue(0),
		})
		d.Messages = append(d.Messages, fmt.Sprintf("INC%d", i), fmt.Sprintf("DEC%d", i))
		inc, dec := fmt.Sprintf("INC%d", i), fmt.Sprintf("DEC%d", i)
		d.Rules = append(d.Rules, carveOuts(inc)...)
		d.Rules = append(d.Rules, spec.Rule{
			Message: inc,
			When:    []spec.Cond{{Component: name, Op: spec.OpLt, Value: spec.ParamValue(0)}},
			Set:     []spec.Assign{{Component: name, Add: 1}},
		})
		d.Rules = append(d.Rules, carveOuts(dec)...)
		d.Rules = append(d.Rules, spec.Rule{
			Message: dec,
			When:    []spec.Cond{{Component: name, Op: spec.OpGt, Value: spec.Lit(0)}},
			Set:     []spec.Assign{{Component: name, Add: -1}},
		})
		when = append(when, spec.Cond{Component: name, Op: spec.OpEq, Value: spec.ParamValue(0)})
		start = append(start, spec.Lit(0))
	}
	d.Messages = append(d.Messages, "FIN")
	d.Rules = append(d.Rules, spec.Rule{
		Message: "FIN", When: when, Actions: finishActions, Finish: true,
	})
	d.Start = start
	return d
}

// BenchmarkRegenerateDelta measures incremental regeneration after a
// one-rule edit against from-scratch generation of the edited model. The
// incremental path recomputes one effect column out of nine and rebuilds;
// from-scratch re-applies every message in every state and re-interns the
// whole space. Merging is disabled on both sides (as in
// BenchmarkGenerateFrontier) so the comparison isolates exploration cost.
// Fingerprint equality is pinned before the timed loops so the speedup
// can never come from producing a different machine.
func BenchmarkRegenerateDelta(b *testing.B) {
	const param = 7
	compileModel := func(d spec.Doc) core.Model {
		c, err := spec.Compile(d)
		if err != nil {
			b.Fatal(err)
		}
		m, err := c.Model(param)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	oldDoc := regenDoc(param, []string{"->done"})
	newDoc := regenDoc(param, []string{"->done", "->notify"})
	oldCompiled, err := spec.Compile(oldDoc)
	if err != nil {
		b.Fatal(err)
	}
	newCompiled, err := spec.Compile(newDoc)
	if err != nil {
		b.Fatal(err)
	}
	delta := spec.Diff(oldCompiled.Doc(), newCompiled.Doc())
	if delta.IsFull() || len(delta.Messages) != 1 {
		b.Fatalf("delta = %+v, want exactly one affected message", delta)
	}

	ctx := context.Background()
	genOpts := []core.Option{core.WithoutDescriptions(), core.WithoutMerging()}
	oldModel, newModel := compileModel(oldDoc), compileModel(newDoc)
	oldMachine, err := core.Generate(ctx, oldModel, genOpts...)
	if err != nil {
		b.Fatal(err)
	}
	want, err := core.Generate(ctx, newModel, genOpts...)
	if err != nil {
		b.Fatal(err)
	}

	// Fingerprint equality is pinned here, outside the timed loops, so
	// the timing compares pure regeneration against pure generation.
	pinned, err := core.Regenerate(ctx, oldMachine, newModel, delta, genOpts...)
	if err != nil {
		b.Fatal(err)
	}
	if pinned.Fingerprint() != want.Fingerprint() {
		b.Fatalf("incremental fingerprint %s != from-scratch %s",
			pinned.Fingerprint(), want.Fingerprint())
	}

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Regenerate(ctx, oldMachine, newModel, delta, genOpts...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("from-scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Generate(ctx, newModel, genOpts...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeArtifact measures end-to-end serve-path latency through a
// real HTTP round trip: client connection, routing, pipeline lookup,
// rendering and caching headers. "cold" purges the pipeline before every
// request so each one pays generation and rendering; "warm" measures the
// fully memoised steady state. Per-request latencies are sorted and the
// p50/p99 quantiles reported alongside ns/op.
func BenchmarkServeArtifact(b *testing.B) {
	const path = "/v1/models/commit/artifacts/text?r=7"
	serve := func(b *testing.B, ts *httptest.Server) time.Duration {
		b.Helper()
		begin := time.Now()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return time.Since(begin)
	}
	reportQuantiles := func(b *testing.B, lat []time.Duration) {
		b.Helper()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns")
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
	}

	b.Run("cold", func(b *testing.B) {
		p := artifact.New()
		ts := httptest.NewServer(api.NewHandler(p))
		defer ts.Close()
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p.Purge()
			b.StartTimer()
			lat = append(lat, serve(b, ts))
		}
		reportQuantiles(b, lat)
	})
	b.Run("warm", func(b *testing.B) {
		ts := httptest.NewServer(api.NewHandler(artifact.New()))
		defer ts.Close()
		serve(b, ts)
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat = append(lat, serve(b, ts))
		}
		reportQuantiles(b, lat)
	})
}

// BenchmarkTraceCheck measures streaming trace conformance at line rate:
// a long non-finishing trace (FREE/NOT_FREE alternation never crosses a
// quorum threshold) checked against the commit machine, per decoder
// front-end. Memory stays bounded by the longest line regardless of
// trace length.
func BenchmarkTraceCheck(b *testing.B) {
	machine := buildCommitMachine(b, 4)
	const lines = 1000
	var jsonl, text bytes.Buffer
	for i := 0; i < lines; i++ {
		if i%2 == 0 {
			jsonl.WriteString("{\"msg\":\"FREE\"}\n")
			text.WriteString("12:00:00.001 member-0 recv FREE from member-1\n")
		} else {
			jsonl.WriteString("{\"msg\":\"NOT_FREE\"}\n")
			text.WriteString("12:00:00.002 member-0 recv NOT_FREE from member-1\n")
		}
	}
	run := func(b *testing.B, format string, data []byte) {
		mon, err := trace.NewMonitor(
			trace.WithTarget("", machine),
			trace.WithObserver(trace.ObserverFunc(func(trace.Verdict) bool { return true })),
		)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dec, err := trace.NewDecoder(format, bytes.NewReader(data), nil)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := mon.Run(context.Background(), dec)
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Conforming() || rep.Events != lines {
				b.Fatalf("report = %+v", rep)
			}
		}
		b.ReportMetric(float64(b.N)*lines/b.Elapsed().Seconds(), "lines/s")
	}
	b.Run("jsonl", func(b *testing.B) { run(b, trace.FormatJSONL, jsonl.Bytes()) })
	b.Run("regex", func(b *testing.B) { run(b, trace.FormatRegex, text.Bytes()) })
}

// BenchmarkFleetSim measures the fleet-scale simulation engine (E17): one
// full deterministic scenario run — hundreds of instances born by a
// poisson arrival process over sharded virtual-time networks, every
// delivery classified — per iteration. instances/sec is the engine's
// wall-clock fleet throughput; the p50-ns/p99-ns metrics are the
// *virtual-time* completion percentiles read off the deterministic
// histogram, so the benchgate percentile gate pins the simulated latency
// distribution exactly: any drift is a behaviour change, not noise.
func BenchmarkFleetSim(b *testing.B) {
	sc := fleetsim.Scenario{
		Name:       "bench",
		Model:      "commit",
		Param:      4,
		Instances:  256,
		Seed:       42,
		DurationMS: 10000,
		Arrival:    fleetsim.Arrival{Process: fleetsim.ArrivalPoisson, RatePerSec: 100},
		Faults:     fleetsim.Faults{DuplicateRate: 0.02},
		Tolerance:  1,
	}
	if err := sc.Normalize(); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var rep *fleetsim.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = fleetsim.Run(ctx, sc, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rep.UnexpectedViolations != 0 {
		b.Fatalf("%d unexpected violations", rep.UnexpectedViolations)
	}
	b.ReportMetric(float64(rep.Fleet.Born)*float64(b.N)/b.Elapsed().Seconds(), "instances/sec")
	b.ReportMetric(float64(rep.Completion.P50Ns), "p50-ns")
	b.ReportMetric(float64(rep.Completion.P99Ns), "p99-ns")
}

// nullTransport and nullClock isolate the routing hot path: no sends
// fire and no timers arm, so the benchmark measures only the ring
// lookup and the ownership decision.
type nullTransport struct{}

func (nullTransport) Send(string, string, []byte) {}

type nullClock struct{}

func (nullClock) Now() time.Duration          { return 0 }
func (nullClock) After(time.Duration, func()) {}

// BenchmarkClusterRoute measures the cluster serve path's per-request
// routing decision — consistent-hash ring lookup plus owner/replica
// classification — across membership sizes. The decision sits on the
// /v1 hot path of every clustered request, so it is ns/op and
// alloc-gated like the render-path benchmarks.
func BenchmarkClusterRoute(b *testing.B) {
	for _, size := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			node, err := cluster.New(cluster.Config{
				ID: "bench-node-000", URL: "bench-node-000", Replicas: 2,
				Transport: nullTransport{}, Clock: nullClock{},
			})
			if err != nil {
				b.Fatal(err)
			}
			node.Start()
			members := make([]cluster.Member, 0, size-1)
			for i := 1; i < size; i++ {
				id := fmt.Sprintf("bench-node-%03d", i)
				members = append(members, cluster.Member{ID: id, URL: id, Incarnation: 1, Status: cluster.StatusAlive})
			}
			payload, err := json.Marshal(struct {
				From    cluster.Member   `json:"from"`
				Members []cluster.Member `json:"members"`
			}{From: members[0], Members: members})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := node.Handle(cluster.KindGossipAck, payload, members[0].URL); err != nil {
				b.Fatal(err)
			}
			keys := make([]string, 512)
			for i := range keys {
				keys[i] = fmt.Sprintf("%016x", uint64(chord.HashString(fmt.Sprintf("machine-fingerprint-%d", i))))
			}
			b.ReportAllocs()
			b.ResetTimer()
			owners := 0
			for i := 0; i < b.N; i++ {
				if node.Route(keys[i%len(keys)]).Relation == cluster.RelOwner {
					owners++
				}
			}
			b.StopTimer()
			if owners == 0 && b.N >= len(keys) {
				b.Fatal("node owned none of 512 uniform keys — the ring is broken")
			}
		})
	}
}
