package asagen

import (
	"context"
	"errors"
	"io"
	"iter"

	"asagen/internal/trace"
)

// Trace formats accepted by Check (see WithTraceFormat).
const (
	// TraceFormatJSONL decodes JSON Lines traces: one event per line,
	// either a bare JSON string naming the message ("VOTE") or an object
	// with a "msg" member; other members are ignored.
	TraceFormatJSONL = "jsonl"
	// TraceFormatRegex decodes text traces through ordered transition
	// patterns (see WithTracePattern); the first matching rule supplies
	// the message, and non-matching lines are reported as skipped.
	TraceFormatRegex = "regex"
)

// VerdictKind classifies one conformance verdict.
type VerdictKind string

// Verdict kinds produced by Check.
const (
	// VerdictAccepted: the machine consumed the message; a transition
	// fired and its actions were performed.
	VerdictAccepted VerdictKind = "accepted"
	// VerdictIgnored: the delivery was rejected (guard-rejected,
	// out-of-vocabulary, or after finish) but absorbed by the tolerance
	// budget.
	VerdictIgnored VerdictKind = "ignored"
	// VerdictSkipped: the decoder produced no event for the line (no
	// transition pattern matched).
	VerdictSkipped VerdictKind = "skipped"
	// VerdictFinished: the machine reached its finish state; emitted in
	// addition to the accepted verdict of the finishing delivery.
	VerdictFinished VerdictKind = "finished"
	// VerdictViolation: a rejected delivery after the tolerance budget
	// was exhausted — the trace does not conform.
	VerdictViolation VerdictKind = "violation"
	// VerdictMalformed: the input is not a trace in the declared format;
	// the stream ends here.
	VerdictMalformed VerdictKind = "malformed"
	// VerdictAborted: the run was cancelled (context cancellation or a
	// trace-reader failure); the stream ends here.
	VerdictAborted VerdictKind = "aborted"
	// VerdictSummary: the terminal verdict of a completed run, carrying
	// the aggregate CheckStats.
	VerdictSummary VerdictKind = "summary"
)

// Verdict is the conformance judgement of one trace line (or of the
// whole run, for the terminal kinds). Its JSON encoding is canonical —
// the same trace yields byte-identical verdict streams through the SDK,
// the `fsmgen check` command and the /v1 check route.
type Verdict struct {
	// Line is the 1-based trace line judged; 0 for terminal verdicts
	// not anchored to a line.
	Line int
	// Event is the delivered message type.
	Event string
	// Kind classifies the verdict.
	Kind VerdictKind
	// State is the machine state after the delivery (unchanged for
	// rejections).
	State string
	// Actions are the actions an accepted delivery performed, in
	// transition order.
	Actions []string
	// Detail carries the rejection, skip or decode-failure reason.
	Detail string
	// Stats is the run report; non-nil only on VerdictSummary.
	Stats *CheckStats
}

// MarshalJSON renders the canonical verdict encoding (fixed key order,
// no insignificant whitespace).
func (v Verdict) MarshalJSON() ([]byte, error) {
	return v.internal().AppendJSON(nil), nil
}

// internal converts to the wire-encoding form shared with the API layer.
func (v Verdict) internal() trace.Verdict {
	out := trace.Verdict{
		Line:    v.Line,
		Event:   v.Event,
		Kind:    internalKind(v.Kind),
		State:   v.State,
		Actions: v.Actions,
		Detail:  v.Detail,
	}
	if v.Stats != nil {
		out.Stats = &trace.Report{
			Lines:          v.Stats.Lines,
			Events:         v.Stats.Events,
			Accepted:       v.Stats.Accepted,
			Ignored:        v.Stats.Ignored,
			Skipped:        v.Stats.Skipped,
			Violations:     v.Stats.Violations,
			FirstViolation: v.Stats.FirstViolation,
			Finished:       v.Stats.Finished,
			FinalState:     v.Stats.FinalState,
		}
	}
	return out
}

var kindByInternal = map[trace.Kind]VerdictKind{
	trace.KindAccepted:  VerdictAccepted,
	trace.KindIgnored:   VerdictIgnored,
	trace.KindSkipped:   VerdictSkipped,
	trace.KindFinished:  VerdictFinished,
	trace.KindViolation: VerdictViolation,
	trace.KindMalformed: VerdictMalformed,
	trace.KindAborted:   VerdictAborted,
	trace.KindSummary:   VerdictSummary,
}

func internalKind(k VerdictKind) trace.Kind {
	for ik, pk := range kindByInternal {
		if pk == k {
			return ik
		}
	}
	return trace.KindSkipped
}

// CheckStats is the aggregate report of one Check run, carried by the
// summary verdict.
type CheckStats struct {
	// Lines counts trace lines consumed, including blank and skipped
	// ones; Events counts decoded events delivered to the machine.
	Lines  int
	Events int
	// Accepted, Ignored, Skipped and Violations count verdicts by kind.
	Accepted   int
	Ignored    int
	Skipped    int
	Violations int
	// FirstViolation is the line of the first violation; 0 when the
	// trace conforms.
	FirstViolation int
	// Finished reports whether the machine reached its finish state.
	Finished bool
	// FinalState is the machine state when the run ended.
	FinalState string
}

// Conforming reports whether the checked trace conformed to the machine.
func (s CheckStats) Conforming() bool { return s.Violations == 0 }

// CheckOption configures one Check call.
type CheckOption func(*checkConfig)

type checkConfig struct {
	format    string
	patterns  []string
	tolerance int
	param     int
	keepGoing bool
}

// WithTraceFormat selects the trace encoding: TraceFormatJSONL (the
// default) or TraceFormatRegex.
func WithTraceFormat(format string) CheckOption {
	return func(c *checkConfig) { c.format = format }
}

// WithTracePattern adds a transition pattern for TraceFormatRegex (and
// implies that format): "PATTERN" decodes a matching line to its first
// capture group, "PATTERN=>TEMPLATE" to the template with $1/${name}
// expanded. Patterns are tried in registration order, first match wins;
// without any, the first ALL_CAPS token of each line is the message.
func WithTracePattern(rule string) CheckOption {
	return func(c *checkConfig) {
		c.patterns = append(c.patterns, rule)
		c.format = TraceFormatRegex
	}
}

// WithTolerance sets how many rejected deliveries are absorbed before a
// further rejection becomes a violation. The default is 0: the first
// rejection violates.
func WithTolerance(n int) CheckOption {
	return func(c *checkConfig) { c.tolerance = n }
}

// WithTraceParam selects the model parameter of the machine the trace
// is checked against. Values <= 0 select the model's default.
func WithTraceParam(r int) CheckOption {
	return func(c *checkConfig) { c.param = r }
}

// WithKeepGoing makes Check read the whole trace even after a
// violation, counting every violation, instead of stopping at the
// first one.
func WithKeepGoing() CheckOption {
	return func(c *checkConfig) { c.keepGoing = true }
}

// Check streams the trace read from r through the named model's
// generated machine and yields one Verdict per judged line, ending with
// exactly one terminal verdict: a summary (the trace was fully judged —
// conforming or violating, per its Stats), a malformed verdict (the
// input is not a trace in the declared format), or an aborted verdict
// (ctx was cancelled or the reader failed). The machine is the same
// memoised family member Generate returns, so checking and rendering
// share one generation.
//
// The returned iterator is single-use — it consumes r — and memory use
// is bounded by the longest trace line, never the trace length: lines
// are judged and discarded at line rate. Breaking out of the loop stops
// reading promptly. Errors detectable before any trace is read (unknown
// model, bad parameter, bad pattern) are returned immediately instead
// of as verdicts; they match the package sentinels under errors.Is.
func (c *Client) Check(ctx context.Context, model string, r io.Reader, opts ...CheckOption) (iter.Seq[Verdict], error) {
	cfg := checkConfig{format: TraceFormatJSONL}
	for _, opt := range opts {
		opt(&cfg)
	}
	var rules []trace.Rule
	for _, p := range cfg.patterns {
		rule, err := trace.ParseRule(p)
		if err != nil {
			return nil, wrapSentinel(ErrBadTrace, err)
		}
		rules = append(rules, rule)
	}
	if cfg.format != TraceFormatJSONL && cfg.format != TraceFormatRegex {
		return nil, wrapSentinel(ErrBadTrace,
			errors.New("asagen: unknown trace format "+cfg.format+" (known: jsonl, regex)"))
	}
	machine, err := c.Generate(ctx, model, WithParam(cfg.param))
	if err != nil {
		return nil, err
	}
	return func(yield func(Verdict) bool) {
		dec, err := trace.NewDecoder(cfg.format, r, rules)
		if err != nil {
			yield(Verdict{Kind: VerdictAborted, Detail: err.Error()})
			return
		}
		monOpts := []trace.MonitorOption{
			trace.WithTarget("", machine.machine),
			trace.WithTolerance(cfg.tolerance),
			trace.WithObserver(trace.ObserverFunc(func(v trace.Verdict) bool {
				return yield(publicVerdict(v))
			})),
		}
		if cfg.keepGoing {
			monOpts = append(monOpts, trace.WithKeepGoing())
		}
		mon, err := trace.NewMonitor(monOpts...)
		if err != nil {
			yield(Verdict{Kind: VerdictAborted, Detail: err.Error()})
			return
		}
		rep, err := mon.Run(ctx, dec)
		if errors.Is(err, trace.ErrStopped) {
			return // the consumer broke out of the loop
		}
		yield(publicVerdict(trace.Terminal(rep, err)))
	}, nil
}

// publicVerdict converts an internal verdict to the public shape.
func publicVerdict(v trace.Verdict) Verdict {
	out := Verdict{
		Line:    v.Line,
		Event:   v.Event,
		Kind:    kindByInternal[v.Kind],
		State:   v.State,
		Actions: v.Actions,
		Detail:  v.Detail,
	}
	if v.Stats != nil {
		out.Stats = &CheckStats{
			Lines:          v.Stats.Lines,
			Events:         v.Stats.Events,
			Accepted:       v.Stats.Accepted,
			Ignored:        v.Stats.Ignored,
			Skipped:        v.Stats.Skipped,
			Violations:     v.Stats.Violations,
			FirstViolation: v.Stats.FirstViolation,
			Finished:       v.Stats.Finished,
			FinalState:     v.Stats.FinalState,
		}
	}
	return out
}
