package asagen

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"iter"
	"sync"

	"asagen/internal/artifact"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
	"asagen/internal/spec"
)

// VocabularyCommit marks models whose generated machines react to the
// commit protocol's message set; only these can drive the version-service
// runtime (see ModelInfo.Vocabulary).
const VocabularyCommit = models.VocabularyCommit

// ModelInfo describes one registered scenario.
type ModelInfo struct {
	// Name is the registry key, e.g. "commit".
	Name string
	// Description is a one-line summary of the scenario.
	Description string
	// ParamName names the model parameter, e.g. "replication factor".
	ParamName string
	// DefaultParam is the parameter used when a request passes none.
	DefaultParam int
	// SweepParams are representative parameter values, ascending.
	SweepParams []int
	// HasEFSM reports whether the model declares the parameter-independent
	// EFSM generalisation (required by the efsm formats).
	HasEFSM bool
	// Vocabulary names the message vocabulary the generated machines react
	// to; empty when no runtime layer consumes it.
	Vocabulary string
}

// Request names one artefact: a registered model, a parameter value (<= 0
// selects the model's default) and a registered format.
type Request struct {
	Model  string
	Param  int
	Format string
}

// Result is one rendered artefact, or the classified failure to produce
// it.
type Result struct {
	// Model, Param and Format echo the request, with Param resolved to the
	// effective parameter value.
	Model  string
	Param  int
	Format string
	// MediaType is the artefact's MIME type; Ext the suggested filename
	// extension including the dot.
	MediaType string
	Ext       string
	// Data is the rendered content.
	Data []byte
	// Fingerprint is the hex fingerprint of the generated machine family
	// member; empty for EFSM formats, which bypass machine generation.
	Fingerprint string
	// ContentHash is the hex SHA-256 of Data, for content addressing;
	// empty when Err is set.
	ContentHash string
	// Err classifies the failure under the package's sentinel errors; nil
	// on success.
	Err error
}

// FileName returns a content-addressed filename:
// <model>-r<param>.<format>.<hash12><ext>. Equal content always maps to
// the same name, so re-running a batch never duplicates artefacts.
func (r Result) FileName() string {
	hash := r.ContentHash
	if len(hash) > 12 {
		hash = hash[:12]
	}
	return fmt.Sprintf("%s-r%d.%s.%s%s", r.Model, r.Param, r.Format, hash, r.Ext)
}

// Stats is a snapshot of a client's memoisation counters.
type Stats struct {
	// Generations counts machine generations that ran to completion;
	// CancelledGenerations counts generations aborted by context
	// cancellation. Concurrent first requests for one machine share a
	// single generation.
	Generations          int64
	CancelledGenerations int64
	// IncrementalGenerations counts generations satisfied by patching a
	// previously cached machine after UpdateModel, rather than exploring
	// from scratch. They also count as Generations.
	IncrementalGenerations int64
	// CacheHits/CacheMisses/CacheEvictions report the machine cache;
	// CachedMachines is its current size.
	CacheHits, CacheMisses, CacheEvictions int64
	CachedMachines                         int
	// RenderHits and RenderMisses count rendered-artefact memo lookups.
	RenderHits, RenderMisses int64
}

// Client is the public facade over the generation core, the scenario and
// format registries, and the artefact pipeline. It memoises generated
// machines per model fingerprint and rendered artefacts per
// (fingerprint, format), both single-flight under concurrency. The zero
// cost path — repeated requests for cached work — is lock-cheap and
// allocation-free beyond the returned values. A Client is safe for
// concurrent use.
type Client struct {
	pipeline   *artifact.Pipeline
	reg        *models.Registry
	genOpts    []core.Option
	cacheLimit int

	// mu guards caches, the per-behaviour-option-set generation caches
	// used by Generate calls that override the client's options, and
	// modelFPs, the fingerprints Generate produced per model name (used
	// to purge caches when a model is unregistered).
	mu       sync.Mutex
	caches   map[string]*core.Cache
	modelFPs map[string]map[clientFP]struct{}
}

// clientFP names one generation the client performed in a
// per-behaviour-option cache: the option-set key and the machine
// fingerprint. Generations in the pipeline's shared cache are tracked by
// the pipeline itself.
type clientFP struct {
	key string
	fp  core.Fingerprint
}

// NewClient returns a client with the given options.
func NewClient(opts ...ClientOption) *Client {
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	reg := models.Default()
	if cfg.isolated {
		reg = reg.Clone()
	}
	_, _, _, coreOpts, _ := splitGenerateOptions(cfg.genOpts)
	p := artifact.New(
		artifact.WithJobs(cfg.jobs),
		artifact.WithGenerateOptions(coreOpts...),
		artifact.WithRegistry(reg),
	)
	if cfg.cacheLimit > 0 {
		p.Cache().SetLimit(cfg.cacheLimit)
	}
	return &Client{
		pipeline:   p,
		reg:        reg,
		genOpts:    coreOpts,
		cacheLimit: cfg.cacheLimit,
		caches:     make(map[string]*core.Cache),
		modelFPs:   make(map[string]map[clientFP]struct{}),
	}
}

// Models returns the registered scenarios, sorted by name.
func (c *Client) Models() []ModelInfo {
	names := c.reg.Names()
	out := make([]ModelInfo, 0, len(names))
	for _, name := range names {
		info, err := c.Model(name)
		if err != nil {
			continue
		}
		out = append(out, info)
	}
	return out
}

// Model returns the description of one registered scenario, or
// ErrUnknownModel.
func (c *Client) Model(name string) (ModelInfo, error) {
	e, err := c.reg.Get(name)
	if err != nil {
		return ModelInfo{}, wrapSentinel(ErrUnknownModel, err)
	}
	return ModelInfo{
		Name:         e.Name,
		Description:  e.Description,
		ParamName:    e.ParamName,
		DefaultParam: e.DefaultParam,
		SweepParams:  append([]int(nil), e.SweepParams...),
		HasEFSM:      e.EFSM != nil,
		Vocabulary:   e.Vocabulary,
	}, nil
}

// Formats returns the registered artefact format names, sorted.
func (c *Client) Formats() []string { return render.Formats() }

// IsEFSMFormat reports whether the registered format renders the
// parameter-independent EFSM generalisation rather than a concrete
// machine. EFSM artefacts are produced through Render; Machine.Render
// handles only concrete-machine formats.
func (c *Client) IsEFSMFormat(name string) bool { return render.IsEFSMFormat(name) }

// Generate executes the named model and returns the generated machine
// family member. The machine is memoised per model fingerprint (unless
// WithoutCache is passed), so repeated and concurrent calls for equivalent
// models pay the generation cost once. Cancelling ctx aborts the
// generation promptly with ctx.Err() and leaves no cache entry.
func (c *Client) Generate(ctx context.Context, model string, opts ...GenerateOption) (*Machine, error) {
	entry, err := c.reg.Get(model)
	if err != nil {
		return nil, wrapSentinel(ErrUnknownModel, err)
	}
	param, setParam, fresh, callOpts, key := splitGenerateOptions(opts)
	if !setParam || param <= 0 {
		param = entry.DefaultParam
	}
	m, err := entry.Build(param)
	if err != nil {
		return nil, mapErr(err)
	}

	effOpts := callOpts
	if len(c.genOpts) > 0 {
		effOpts = append(append([]core.Option(nil), c.genOpts...), callOpts...)
	}
	var (
		machine *core.StateMachine
		fp      core.Fingerprint
	)
	switch {
	case fresh:
		fp = core.FingerprintModel(m, effOpts...)
		machine, err = core.Generate(ctx, m, effOpts...)
	case key == "":
		cache := c.pipeline.Cache()
		fp = cache.Fingerprint(m)
		c.pipeline.TrackFingerprint(entry.Name, param, fp)
		machine, err = cache.MachineForFingerprint(ctx, fp, m)
	default:
		cache := c.cacheFor(key, effOpts)
		fp = cache.Fingerprint(m)
		c.recordFP(entry.Name, key, fp)
		machine, err = cache.MachineForFingerprint(ctx, fp, m)
	}
	if err != nil {
		return nil, mapErr(err)
	}
	return &Machine{name: entry.Name, param: param, machine: machine, model: m, fp: fp}, nil
}

// RegisterModel compiles the spec and registers it on the client's
// registry, making it immediately generatable and renderable alongside
// the built-in scenarios (including batch cross products). It fails with
// ErrInvalidSpec when the spec does not compile (the *SpecError cause
// lists every diagnostic) and ErrModelExists when the name is taken.
// Registration is thread-safe with concurrent lookups and renders.
//
// By default registrations land on the process-wide registry shared by
// all non-isolated clients; construct the client WithIsolatedRegistry for
// per-instance isolation (the serve endpoint always isolates).
func (c *Client) RegisterModel(s *ModelSpec) error {
	compiled, err := s.compile()
	if err != nil {
		return err
	}
	if err := c.reg.Add(compiled.Entry()); err != nil {
		if errors.Is(err, models.ErrExists) {
			return wrapSentinel(ErrModelExists, err)
		}
		return wrapSentinel(ErrInvalidSpec, err)
	}
	return nil
}

// UpdateModel compiles the spec and registers or replaces it on the
// client's registry in place, like PUT /v1/models/{model}. Unlike
// RegisterModel, a taken name is not a conflict: the existing entry is
// replaced, its stale EFSMs and rendered artefacts are purged, and — when
// the previous entry came from a declarative spec whose structure the new
// spec preserves — every previously generated family member is linked so
// its next generation patches the cached machine's exploration
// incrementally (see spec.Diff and core.Regenerate) instead of exploring
// from scratch. It fails with ErrInvalidSpec when the spec does not
// compile.
func (c *Client) UpdateModel(s *ModelSpec) error {
	compiled, err := s.compile()
	if err != nil {
		return err
	}
	entry := compiled.Entry()
	delta := core.ModelDelta{Full: true}
	if old, err := c.reg.Get(entry.Name); err == nil {
		if oldDoc, ok := old.Spec.(spec.Doc); ok {
			delta = spec.Diff(oldDoc, compiled.Doc())
		}
	}
	if _, err := c.pipeline.UpdateModel(entry, delta); err != nil {
		return wrapSentinel(ErrInvalidSpec, err)
	}
	return nil
}

// UnregisterModel removes a registered model from the client's registry
// and purges every memoised machine, EFSM and rendered artefact produced
// for it, so a later registration under the same name can never observe
// the departed model's cached work. (Re-registering a changed spec is
// additionally protected by fingerprints: behaviourally different specs
// never share a cache key.) It fails with ErrUnknownModel when the name
// is not registered.
func (c *Client) UnregisterModel(name string) error {
	if !c.reg.Remove(name) {
		return wrapSentinel(ErrUnknownModel,
			fmt.Errorf("asagen: unknown model %q (known: %v)", name, c.reg.Names()))
	}
	// The pipeline purge covers its render/EFSM memos and the shared
	// generation cache (the default Generate path tracks through
	// TrackFingerprint); only the per-behaviour-option caches are the
	// client's own bookkeeping.
	c.pipeline.PurgeModel(name)

	c.mu.Lock()
	refs := c.modelFPs[name]
	delete(c.modelFPs, name)
	caches := make(map[string]*core.Cache, len(c.caches))
	for key, cache := range c.caches {
		caches[key] = cache
	}
	c.mu.Unlock()
	for ref := range refs {
		if cache, ok := caches[ref.key]; ok {
			cache.Drop(ref.fp)
		}
	}
	return nil
}

// recordFP remembers a generation's location in a per-behaviour-option
// cache per model name, for UnregisterModel's purge.
func (c *Client) recordFP(model, key string, fp core.Fingerprint) {
	c.mu.Lock()
	set, ok := c.modelFPs[model]
	if !ok {
		set = make(map[clientFP]struct{}, 1)
		c.modelFPs[model] = set
	}
	set[clientFP{key: key, fp: fp}] = struct{}{}
	c.mu.Unlock()
}

// cacheFor returns the memoisation cache for a per-call behaviour-option
// set, creating it on first use. Worker-count options get distinct caches
// but identical fingerprints, so they still share nothing beyond identity.
func (c *Client) cacheFor(key string, opts []core.Option) *core.Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	cache, ok := c.caches[key]
	if !ok {
		cache = core.NewGenerationCache(opts...)
		if c.cacheLimit > 0 {
			cache.SetLimit(c.cacheLimit)
		}
		c.caches[key] = cache
	}
	return cache
}

// Render produces the artefact for one request. Generation and rendering
// are memoised and single-flight. The returned error equals Result.Err.
func (c *Client) Render(ctx context.Context, req Request) (Result, error) {
	res := publicResult(c.pipeline.Render(ctx, artifact.Request{
		Model:  req.Model,
		Param:  req.Param,
		Format: req.Format,
	}))
	return res, res.Err
}

// RenderAll renders every request concurrently under the client's worker
// bound and yields (index, result) pairs in request order. Per-request
// failures are delivered in Result.Err; cancelling ctx makes the remaining
// results carry ctx.Err().
func (c *Client) RenderAll(ctx context.Context, reqs []Request) iter.Seq2[int, Result] {
	return func(yield func(int, Result) bool) {
		for i, res := range c.pipeline.RenderAll(ctx, toInternalRequests(reqs)) {
			if !yield(i, publicResult(res)) {
				return
			}
		}
	}
}

// Stream renders every request concurrently and yields results as they
// complete, in arbitrary order. Breaking out of the loop early never
// leaks the workers; renders already in flight run to completion.
func (c *Client) Stream(ctx context.Context, reqs []Request) iter.Seq[Result] {
	return func(yield func(Result) bool) {
		for res := range c.pipeline.Stream(ctx, toInternalRequests(reqs)) {
			if !yield(publicResult(res)) {
				return
			}
		}
	}
}

// AllRequests is the full registry cross product: every registered model
// (at its default parameter) in every registered format, skipping EFSM
// formats for models without an EFSM generalisation. Ordered by model
// name, then format name. Dynamically registered models are included.
func (c *Client) AllRequests() []Request {
	internal := c.pipeline.AllRequests()
	reqs := make([]Request, len(internal))
	for i, r := range internal {
		reqs[i] = Request{Model: r.Model, Param: r.Param, Format: r.Format}
	}
	return reqs
}

// Stats returns a snapshot of the client's memoisation counters.
func (c *Client) Stats() Stats {
	st := c.pipeline.Stats()
	out := Stats{
		Generations:            st.Machine.Generations,
		CancelledGenerations:   st.Machine.Cancellations,
		IncrementalGenerations: st.Machine.Incremental,
		CacheHits:              st.Machine.Hits,
		CacheMisses:            st.Machine.Misses,
		CacheEvictions:         st.Machine.Evictions,
		CachedMachines:         st.Machine.Entries,
		RenderHits:             st.RenderHits,
		RenderMisses:           st.RenderMisses,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cache := range c.caches {
		cs := cache.Stats()
		out.Generations += cs.Generations
		out.CancelledGenerations += cs.Cancellations
		out.IncrementalGenerations += cs.Incremental
		out.CacheHits += cs.Hits
		out.CacheMisses += cs.Misses
		out.CacheEvictions += cs.Evictions
		out.CachedMachines += cs.Entries
	}
	return out
}

// Purge drops every memoised machine, EFSM and rendered artefact.
func (c *Client) Purge() {
	c.pipeline.Purge()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cache := range c.caches {
		cache.Purge()
	}
}

func toInternalRequests(reqs []Request) []artifact.Request {
	out := make([]artifact.Request, len(reqs))
	for i, r := range reqs {
		out[i] = artifact.Request{Model: r.Model, Param: r.Param, Format: r.Format}
	}
	return out
}

// publicResult converts a pipeline result to the public shape, classifying
// its error under the package sentinels.
func publicResult(res artifact.Result) Result {
	out := Result{
		Model:  res.Request.Model,
		Param:  res.Request.Param,
		Format: res.Request.Format,
		Err:    mapErr(res.Err),
	}
	if res.Err != nil {
		return out
	}
	out.MediaType = res.Artifact.MediaType
	out.Ext = res.Artifact.Ext
	out.Data = res.Artifact.Data
	out.ContentHash = hex.EncodeToString(res.Sum[:])
	if !res.Fingerprint.IsZero() {
		out.Fingerprint = res.Fingerprint.String()
	}
	return out
}
