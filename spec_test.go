package asagen_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"asagen"
)

// terminationSpec ports the hand-written internal/termination adapter to
// the public authoring API, rule for rule and note for note. The artefact
// equivalence test below is the proof that the declarative surface loses
// nothing against a hand-written adapter.
func terminationSpec(name string) *asagen.ModelSpec {
	s := asagen.NewModelSpec(name).
		ModelName("termination-detection").
		Description("declarative port of the termination-detection scenario").
		Parameter("fan-out bound", 4, 1, 2, 4, 8).
		Bool("active").
		Int("outstanding", asagen.Param()).
		Messages("TASK", "SPAWN", "CHILD_DONE", "IDLE")

	s.Rule("TASK").
		When("active", "==", asagen.Lit(0)).
		Set("active", asagen.Lit(1)).
		Note("Activated by an incoming task.")
	s.Rule("SPAWN").
		When("active", "==", asagen.Lit(1)).
		When("outstanding", "<", asagen.Param()).
		Add("outstanding", 1).
		Do("->task").
		Note("Delegate a child task and count it outstanding.")
	s.Rule("CHILD_DONE").
		When("outstanding", "==", asagen.Lit(1)).
		When("active", "==", asagen.Lit(0)).
		Add("outstanding", -1).
		Do("->done").
		Note("One delegated task completed.",
			"Idle with no outstanding children: report completion.").
		Finish()
	s.Rule("CHILD_DONE").
		When("outstanding", ">=", asagen.Lit(1)).
		Add("outstanding", -1).
		Note("One delegated task completed.")
	s.Rule("IDLE").
		When("active", "==", asagen.Lit(1)).
		When("outstanding", "==", asagen.Lit(0)).
		Set("active", asagen.Lit(0)).
		Do("->done").
		Note("Local work finished.",
			"No outstanding children: report completion.").
		Finish()
	s.Rule("IDLE").
		When("active", "==", asagen.Lit(1)).
		Set("active", asagen.Lit(0)).
		Note("Local work finished.")

	s.DescribeWhen("Process is active.", asagen.When("active", "==", asagen.Lit(1))).
		DescribeWhen("Process is idle.", asagen.When("active", "==", asagen.Lit(0))).
		DescribeWhen("{outstanding} delegated tasks outstanding (bound {param}).").
		EFSMLabel("ACTIVE", asagen.When("active", "==", asagen.Lit(1))).
		EFSMLabel("IDLE_WAITING").
		EFSMGuard("outstanding", "SPAWN", "CHILD_DONE", "IDLE").
		EFSMCounter("SPAWN", "outstanding", 1).
		EFSMCounter("CHILD_DONE", "outstanding", -1).
		EFSMSymbol(asagen.Lit(0), "0").
		EFSMSymbol(asagen.Lit(1), "1").
		EFSMSymbol(asagen.Param(), "k").
		EFSMSymbol(asagen.Param().Plus(-1), "k-1")
	return s
}

// TestSpecPortByteIdenticalArtifacts is the tentpole acceptance proof: a
// spec-defined port of the termination scenario renders byte-identical
// artefacts to its hand-written adapter across every registered format,
// including the EFSM generalisation, at several parameter values.
func TestSpecPortByteIdenticalArtifacts(t *testing.T) {
	client := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := client.RegisterModel(terminationSpec("termination-spec")); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	formats := client.Formats()
	if len(formats) != 7 {
		t.Fatalf("format registry has %d formats, want 7: %v", len(formats), formats)
	}
	for _, format := range formats {
		for _, param := range []int{2, 4, 8} {
			hand, err := client.Render(ctx, asagen.Request{Model: "termination", Param: param, Format: format})
			if err != nil {
				t.Fatalf("%s r=%d: adapter render: %v", format, param, err)
			}
			ported, err := client.Render(ctx, asagen.Request{Model: "termination-spec", Param: param, Format: format})
			if err != nil {
				t.Fatalf("%s r=%d: spec render: %v", format, param, err)
			}
			if !bytes.Equal(hand.Data, ported.Data) {
				t.Errorf("%s r=%d: spec artefact differs from the hand-written adapter's (%d vs %d bytes)",
					format, param, len(ported.Data), len(hand.Data))
			}
			if hand.ContentHash != ported.ContentHash {
				t.Errorf("%s r=%d: content hashes differ", format, param)
			}
		}
	}
}

// TestSpecJSONRoundTrip: the builder's JSON form re-parses into a spec
// that renders the same bytes — the wire and file formats are lossless.
func TestSpecJSONRoundTrip(t *testing.T) {
	data, err := terminationSpec("termination-spec").JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := asagen.ParseModelSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name() != "termination-spec" {
		t.Fatalf("parsed name = %q", parsed.Name())
	}

	a := asagen.NewClient(asagen.WithIsolatedRegistry())
	b := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := a.RegisterModel(terminationSpec("termination-spec")); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterModel(parsed); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := asagen.Request{Model: "termination-spec", Format: "text"}
	ra, err := a.Render(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Render(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.Data, rb.Data) {
		t.Error("JSON round-trip changed the rendered artefact")
	}
}

// TestRegisterModelErrors: the typed sentinels round-trip through
// errors.Is, and SpecError carries the diagnostics.
func TestRegisterModelErrors(t *testing.T) {
	client := asagen.NewClient(asagen.WithIsolatedRegistry())

	if err := client.RegisterModel(terminationSpec("dup")); err != nil {
		t.Fatal(err)
	}
	err := client.RegisterModel(terminationSpec("dup"))
	if !errors.Is(err, asagen.ErrModelExists) {
		t.Errorf("duplicate registration error = %v, want ErrModelExists", err)
	}
	if err := client.RegisterModel(terminationSpec("commit")); !errors.Is(err, asagen.ErrModelExists) {
		t.Errorf("built-in shadowing error = %v, want ErrModelExists", err)
	}

	bad := asagen.NewModelSpec("bad")
	bad.Bool("on")
	bad.Rule("MISSING").When("nowhere", "~", asagen.Lit(1))
	err = bad.Compile()
	if !errors.Is(err, asagen.ErrInvalidSpec) {
		t.Fatalf("Compile error = %v, want ErrInvalidSpec", err)
	}
	var serr *asagen.SpecError
	if !errors.As(err, &serr) {
		t.Fatalf("Compile error %T does not carry *SpecError", err)
	}
	paths := map[string]bool{}
	for _, d := range serr.Diagnostics {
		paths[d.Path] = true
	}
	for _, want := range []string{"messages", "rules[0].message", "rules[0].when[0].component", "rules[0].when[0].op"} {
		if !paths[want] {
			t.Errorf("missing diagnostic %q in %v", want, serr.Diagnostics)
		}
	}
	if err := client.RegisterModel(bad); !errors.Is(err, asagen.ErrInvalidSpec) {
		t.Errorf("RegisterModel(bad) = %v, want ErrInvalidSpec", err)
	}
	if _, err := client.Model("bad"); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Error("failed registration left a registry entry")
	}

	if err := client.UnregisterModel("never-registered"); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Errorf("UnregisterModel(unknown) = %v, want ErrUnknownModel", err)
	}
}

// TestRegistryIsolationBetweenClients: isolated clients never share
// dynamic registrations; the default registry is untouched.
func TestRegistryIsolationBetweenClients(t *testing.T) {
	a := asagen.NewClient(asagen.WithIsolatedRegistry())
	b := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := a.RegisterModel(terminationSpec("iso")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Model("iso"); err != nil {
		t.Errorf("registering client cannot see its model: %v", err)
	}
	if _, err := b.Model("iso"); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Error("registration leaked into a sibling isolated client")
	}
	if _, err := asagen.NewClient().Model("iso"); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Error("registration leaked into the shared default registry")
	}
}

// TestUnregisterPurgesCachesAndRefreshesFingerprints is the cache
// interaction contract: unregistering purges the removed model's
// generations, and re-registering a changed spec under the same name
// regenerates under a new fingerprint — no stale cache hits.
func TestUnregisterPurgesCachesAndRefreshesFingerprints(t *testing.T) {
	client := asagen.NewClient(asagen.WithIsolatedRegistry())
	ctx := context.Background()
	if err := client.RegisterModel(terminationSpec("evolving")); err != nil {
		t.Fatal(err)
	}

	m1, err := client.Generate(ctx, "evolving")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Render(ctx, asagen.Request{Model: "evolving", Format: "text"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Render(ctx, asagen.Request{Model: "evolving", Format: "efsm"}); err != nil {
		t.Fatal(err)
	}
	before := client.Stats()
	if before.CachedMachines == 0 {
		t.Fatal("no machines cached after generate+render")
	}

	if err := client.UnregisterModel("evolving"); err != nil {
		t.Fatal(err)
	}
	after := client.Stats()
	if after.CachedMachines >= before.CachedMachines {
		t.Errorf("unregister purged nothing: %d cached before, %d after",
			before.CachedMachines, after.CachedMachines)
	}
	if _, err := client.Generate(ctx, "evolving"); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Errorf("Generate after unregister = %v, want ErrUnknownModel", err)
	}

	// Re-register a behaviourally different spec under the same name: the
	// fingerprint must change and the machine must be regenerated, never
	// served from the departed model's cache.
	changed := terminationSpec("evolving")
	changed.Rule("TASK").
		When("active", "==", asagen.Lit(1)).
		Set("active", asagen.Lit(1)).
		Note("A second task while active is absorbed.")
	if err := client.RegisterModel(changed); err != nil {
		t.Fatal(err)
	}
	genBefore := client.Stats().Generations
	m2, err := client.Generate(ctx, "evolving")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() == m2.Fingerprint() {
		t.Error("changed spec under the same name kept the old fingerprint")
	}
	if got := client.Stats().Generations; got != genBefore+1 {
		t.Errorf("changed spec did not regenerate: generations %d -> %d", genBefore, got)
	}
	// The changed machine really differs (the extra TASK self-loop).
	if strings.Contains(strings.Join(m1.StateNames(), ","), "missing") {
		t.Fatal("unreachable")
	}

	// Identical re-registration after another unregister is also a fresh
	// generation: the purge removed the cached machine.
	if err := client.UnregisterModel("evolving"); err != nil {
		t.Fatal(err)
	}
	if err := client.RegisterModel(changed); err != nil {
		t.Fatal(err)
	}
	genBefore = client.Stats().Generations
	if _, err := client.Generate(ctx, "evolving"); err != nil {
		t.Fatal(err)
	}
	if got := client.Stats().Generations; got != genBefore+1 {
		t.Errorf("identical spec after purge did not regenerate: generations %d -> %d", genBefore, got)
	}
}

// TestSpecModelFullSDKSurface: a registered spec model flows through the
// whole facade — listing, metadata, batch cross product, streaming and
// the interpreter runtime.
func TestSpecModelFullSDKSurface(t *testing.T) {
	client := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := client.RegisterModel(terminationSpec("ported")); err != nil {
		t.Fatal(err)
	}
	info, err := client.Model("ported")
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasEFSM || info.ParamName != "fan-out bound" || info.DefaultParam != 4 {
		t.Errorf("spec model info = %+v", info)
	}

	reqs := client.AllRequests()
	ported := 0
	for _, r := range reqs {
		if r.Model == "ported" {
			ported++
		}
	}
	if ported != 7 {
		t.Errorf("cross product contains %d ported requests, want 7 (all formats)", ported)
	}

	ctx := context.Background()
	for res := range client.Stream(ctx, []asagen.Request{{Model: "ported", Format: "dot"}}) {
		if res.Err != nil {
			t.Errorf("stream render: %v", res.Err)
		}
	}

	machine, err := client.Generate(ctx, "ported", asagen.WithParam(2))
	if err != nil {
		t.Fatal(err)
	}
	var actions []string
	inst, err := machine.NewInstance(func(a string) { actions = append(actions, a) })
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{"TASK", "SPAWN", "IDLE", "CHILD_DONE"} {
		if _, err := inst.Deliver(msg); err != nil {
			t.Fatalf("deliver %s: %v", msg, err)
		}
	}
	if !inst.Finished() {
		t.Error("interpreter did not reach the finish state")
	}
	if strings.Join(actions, ",") != "->task,->done" {
		t.Errorf("actions = %v", actions)
	}
}

// TestUpdateModelIncrementalRegeneration is the public-facade contract
// for in-place replacement: a rule-level edit applied through UpdateModel
// regenerates the cached machine incrementally, and the result is
// indistinguishable from a client that only ever saw the new spec.
func TestUpdateModelIncrementalRegeneration(t *testing.T) {
	ctx := context.Background()
	client := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := client.RegisterModel(terminationSpec("evolving")); err != nil {
		t.Fatal(err)
	}
	m1, err := client.Generate(ctx, "evolving")
	if err != nil {
		t.Fatal(err)
	}

	// Rule-level edit: absorb a second TASK while active.
	edited := func() *asagen.ModelSpec {
		s := terminationSpec("evolving")
		s.Rule("TASK").
			When("active", "==", asagen.Lit(1)).
			Set("active", asagen.Lit(1)).
			Note("A second task while active is absorbed.")
		return s
	}
	if err := client.UpdateModel(edited()); err != nil {
		t.Fatal(err)
	}

	m2, err := client.Generate(ctx, "evolving")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() == m2.Fingerprint() {
		t.Error("edited spec kept the old fingerprint")
	}
	if got := client.Stats().IncrementalGenerations; got != 1 {
		t.Errorf("IncrementalGenerations = %d, want 1", got)
	}

	// A client that only ever knew the edited spec must agree exactly.
	fresh := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := fresh.RegisterModel(edited()); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Generate(ctx, "evolving")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Fingerprint() != want.Fingerprint() {
		t.Errorf("incremental fingerprint %s != fresh client %s", m2.Fingerprint(), want.Fingerprint())
	}
	got, err := client.Render(ctx, asagen.Request{Model: "evolving", Format: "text"})
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := fresh.Render(ctx, asagen.Request{Model: "evolving", Format: "text"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, wantRes.Data) {
		t.Error("rendered artefact differs from a fresh client's")
	}
	if fresh.Stats().IncrementalGenerations != 0 {
		t.Error("fresh client unexpectedly regenerated incrementally")
	}
}

// TestUpdateModelRegistersWhenAbsent: UpdateModel on an unknown name is a
// plain registration.
func TestUpdateModelRegistersWhenAbsent(t *testing.T) {
	client := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := client.UpdateModel(terminationSpec("brand-new")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Model("brand-new"); err != nil {
		t.Errorf("model absent after UpdateModel: %v", err)
	}
	if err := client.UpdateModel(&asagen.ModelSpec{}); err == nil {
		t.Error("UpdateModel accepted an empty spec")
	}
}
