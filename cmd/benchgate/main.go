// Command benchgate converts `go test -bench` output into a stable JSON
// benchmark inventory and gates CI on ns/op regressions against a
// checked-in baseline.
//
// Parse mode reads the plain benchmark output (package headers included)
// and writes one JSON record per benchmark, name-sorted so the file is
// byte-stable for equal inputs. Besides ns/op and allocs/op, the serve
// benchmarks' custom p50-ns/p99-ns metrics (b.ReportMetric) are captured
// as p50_ns/p99_ns, so tail latency is inventoried and gated exactly like
// throughput. Repeated results for one benchmark (from -count=N) are
// merged field-wise by taking each field's minimum — the noise-robust
// estimator, since noise only ever adds time — and a field reported by
// only some runs keeps its reported value rather than being discarded:
//
//	go test -bench=. -benchtime=3x -count=5 -run='^$' ./... | tee bench.txt
//	benchgate -parse bench.txt -o BENCH_current.json
//
// Compare mode fails (exit 1) when any benchmark present in both files
// regressed in ns/op, allocs/op, p50_ns or p99_ns by more than the
// threshold percentage:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_current.json -max-regression 25
//
// Benchmarks present on only one side are reported informationally and
// never fail the gate, so adding or retiring a benchmark does not require
// touching the baseline in the same change. Benchmarks faster than
// -min-ns on both sides are likewise informational: at -benchtime=3x a
// sub-microsecond benchmark measures three iterations against the timer
// quantum, which is quantization noise, not signal. Allocation counts are
// gated only when both sides report them (-benchmem or b.ReportAllocs)
// and the baseline is at least -min-allocs: unlike timings, allocs/op is
// deterministic, but at single-digit counts one incidental allocation is
// a large percentage without being a meaningful regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the package-qualified benchmark name with the GOMAXPROCS
	// suffix stripped, e.g. "asagen/internal/core:BenchmarkGenerate/r=4".
	Name string `json:"name"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the reported allocs/op; -1 when the benchmark does
	// not report allocations.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// P50Ns and P99Ns are the serve benchmarks' custom latency-percentile
	// metrics (b.ReportMetric "p50-ns"/"p99-ns"); 0 when not reported.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

var (
	// benchLine matches one result line:
	//   BenchmarkName-8   3   123456 ns/op   456 B/op   7 allocs/op
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op(.*)$`)
	pkgLine   = regexp.MustCompile(`^pkg:\s+(\S+)$`)
	allocsRe  = regexp.MustCompile(`([0-9]+) allocs/op`)
	p50Re     = regexp.MustCompile(`([0-9.]+(?:e[+-]?\d+)?) p50-ns`)
	p99Re     = regexp.MustCompile(`([0-9.]+(?:e[+-]?\d+)?) p99-ns`)
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		parse     = fs.String("parse", "", "benchmark output file to parse into JSON")
		out       = fs.String("o", "BENCH_current.json", "JSON output path for -parse")
		baseline  = fs.String("baseline", "", "baseline JSON for -compare mode")
		current   = fs.String("current", "", "current JSON for -compare mode")
		threshold = fs.Float64("max-regression", 25, "maximum tolerated regression (ns/op, allocs/op, p50_ns, p99_ns), percent")
		minNs     = fs.Float64("min-ns", 10000, "noise floor: benchmarks under this ns/op on both sides never gate")
		minAllocs = fs.Int64("min-allocs", 20, "allocation floor: baselines under this allocs/op never gate on allocations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *parse != "":
		return runParse(*parse, *out)
	case *baseline != "" && *current != "":
		return runCompare(*baseline, *current, *threshold, *minNs, *minAllocs, stdout)
	default:
		return fmt.Errorf("nothing to do: pass -parse FILE, or -baseline FILE -current FILE")
	}
}

func runParse(inPath, outPath string) error {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	benches, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("%s contains no benchmark results", inPath)
	}
	data, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

// parseBench extracts the benchmark results from `go test -bench` output,
// qualifying names with the pkg: header lines so equally named benchmarks
// in different packages stay distinct. Repeated results for one name are
// merged field by field, each keeping its minimum over the runs; a field
// absent from some runs (unreported allocs, no percentile metrics) never
// erases the value another run reported.
func parseBench(r io.Reader) ([]Benchmark, error) {
	byName := map[string]Benchmark{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		allocs := int64(-1)
		if am := allocsRe.FindStringSubmatch(m[3]); am != nil {
			if allocs, err = strconv.ParseInt(am[1], 10, 64); err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %v", line, err)
			}
		}
		metric := func(re *regexp.Regexp) (float64, error) {
			pm := re.FindStringSubmatch(m[3])
			if pm == nil {
				return 0, nil
			}
			return strconv.ParseFloat(pm[1], 64)
		}
		p50, err := metric(p50Re)
		if err != nil {
			return nil, fmt.Errorf("bad p50-ns in %q: %v", line, err)
		}
		p99, err := metric(p99Re)
		if err != nil {
			return nil, fmt.Errorf("bad p99-ns in %q: %v", line, err)
		}
		name := m[1]
		if pkg != "" {
			name = pkg + ":" + name
		}
		prev, ok := byName[name]
		if !ok {
			byName[name] = Benchmark{Name: name, NsPerOp: ns, AllocsPerOp: allocs, P50Ns: p50, P99Ns: p99}
			continue
		}
		prev.NsPerOp = min(prev.NsPerOp, ns)
		prev.AllocsPerOp = minReported(prev.AllocsPerOp, allocs)
		prev.P50Ns = minMetric(prev.P50Ns, p50)
		prev.P99Ns = minMetric(prev.P99Ns, p99)
		byName[name] = prev
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	benches := make([]Benchmark, 0, len(byName))
	for _, b := range byName {
		benches = append(benches, b)
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	return benches, nil
}

// minReported merges two allocs/op values where -1 means "not reported":
// an unreported side never erases a reported count.
func minReported(a, b int64) int64 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	return min(a, b)
}

// minMetric merges two optional metric values where 0 means "not
// reported".
func minMetric(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	return min(a, b)
}

func loadJSON(path string) (map[string]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var benches []Benchmark
	if err := json.Unmarshal(data, &benches); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	return byName, nil
}

func runCompare(basePath, curPath string, threshold, minNs float64, minAllocs int64, stdout io.Writer) error {
	base, err := loadJSON(basePath)
	if err != nil {
		return err
	}
	cur, err := loadJSON(curPath)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("%s is empty", curPath)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	compared := 0
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(stdout, "new       %s (%.0f ns/op, no baseline)\n", name, cur[name].NsPerOp)
			continue
		}
		c := cur[name]
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		if b.NsPerOp < minNs && c.NsPerOp < minNs {
			fmt.Fprintf(stdout, "floor     %s %.0f -> %.0f ns/op (%+.1f%%, under %.0f ns noise floor)\n",
				name, b.NsPerOp, c.NsPerOp, delta, minNs)
			continue
		}
		compared++
		status := "ok"
		if delta > threshold {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, limit +%.0f%%)", name, b.NsPerOp, c.NsPerOp, delta, threshold))
		}
		allocNote := ""
		if b.AllocsPerOp >= 0 && c.AllocsPerOp >= 0 {
			allocDelta := 100 * float64(c.AllocsPerOp-b.AllocsPerOp) / float64(max(b.AllocsPerOp, 1))
			allocNote = fmt.Sprintf(", %d -> %d allocs/op (%+.1f%%)", b.AllocsPerOp, c.AllocsPerOp, allocDelta)
			if b.AllocsPerOp >= minAllocs && allocDelta > threshold {
				status = "REGRESSED"
				regressions = append(regressions,
					fmt.Sprintf("%s: %d -> %d allocs/op (%+.1f%%, limit +%.0f%%)", name, b.AllocsPerOp, c.AllocsPerOp, allocDelta, threshold))
			}
		}
		// Latency percentiles gate exactly like ns/op, under the same
		// noise floor: a serve-path p99 that quietly grows past the
		// threshold fails CI even when the mean stays flat.
		pctNote := ""
		for _, pct := range []struct {
			label      string
			base, curr float64
		}{
			{"p50_ns", b.P50Ns, c.P50Ns},
			{"p99_ns", b.P99Ns, c.P99Ns},
		} {
			if pct.base == 0 || pct.curr == 0 {
				continue
			}
			pctDelta := 100 * (pct.curr - pct.base) / pct.base
			pctNote += fmt.Sprintf(", %.0f -> %.0f %s (%+.1f%%)", pct.base, pct.curr, pct.label, pctDelta)
			if pct.base < minNs && pct.curr < minNs {
				continue
			}
			if pctDelta > threshold {
				status = "REGRESSED"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f -> %.0f %s (%+.1f%%, limit +%.0f%%)", name, pct.base, pct.curr, pct.label, pctDelta, threshold))
			}
		}
		fmt.Fprintf(stdout, "%-9s %s %.0f -> %.0f ns/op (%+.1f%%)%s%s\n", status, name, b.NsPerOp, c.NsPerOp, delta, allocNote, pctNote)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(stdout, "retired   %s (in baseline only)\n", name)
		}
	}
	fmt.Fprintf(stdout, "compared %d benchmarks against %s, %d regression(s)\n", compared, basePath, len(regressions))
	if len(regressions) > 0 {
		return fmt.Errorf("regression beyond %.0f%%:\n  %s", threshold, strings.Join(regressions, "\n  "))
	}
	return nil
}
