package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: asagen
cpu: Example CPU
BenchmarkRenderText-8   	     100	     12345 ns/op	    2048 B/op	      30 allocs/op
BenchmarkRenderAll/cold-8         	       3	   9876543 ns/op
pkg: asagen/internal/core
BenchmarkCacheHitMiss/hit-8       	 1000000	      1234.5 ns/op	       0 B/op	       0 allocs/op
ok  	asagen/internal/core	1.234s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(benches), benches)
	}
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	text, ok := byName["asagen:BenchmarkRenderText"]
	if !ok {
		t.Fatalf("package-qualified name missing: %+v", benches)
	}
	if text.NsPerOp != 12345 || text.AllocsPerOp != 30 {
		t.Errorf("RenderText = %+v", text)
	}
	cold := byName["asagen:BenchmarkRenderAll/cold"]
	if cold.NsPerOp != 9876543 || cold.AllocsPerOp != -1 {
		t.Errorf("RenderAll/cold = %+v (allocs must be -1 when unreported)", cold)
	}
	hit := byName["asagen/internal/core:BenchmarkCacheHitMiss/hit"]
	if hit.NsPerOp != 1234.5 || hit.AllocsPerOp != 0 {
		t.Errorf("CacheHitMiss/hit = %+v", hit)
	}
	// Name-sorted for byte-stable output.
	for i := 1; i < len(benches); i++ {
		if benches[i-1].Name >= benches[i].Name {
			t.Errorf("output not name-sorted: %q before %q", benches[i-1].Name, benches[i].Name)
		}
	}
}

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseMergesRepeatedRunsByMinimum(t *testing.T) {
	repeated := `pkg: asagen
BenchmarkX-8   10   900 ns/op   5 allocs/op
BenchmarkX-8   10   1500 ns/op   9 allocs/op
BenchmarkX-8   10   1100 ns/op   5 allocs/op
`
	benches, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 {
		t.Fatalf("parsed %d records for one repeated benchmark, want 1", len(benches))
	}
	if benches[0].NsPerOp != 900 || benches[0].AllocsPerOp != 5 {
		t.Errorf("merged record = %+v, want the 900 ns/op minimum", benches[0])
	}
}

func TestParseModeWritesJSON(t *testing.T) {
	dir := t.TempDir()
	in := writeJSON(t, dir, "bench.txt", sampleOutput)
	out := filepath.Join(dir, "current.json")
	var sb strings.Builder
	if err := run([]string{"-parse", in, "-o", out}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"asagen:BenchmarkRenderText"`, `"ns_per_op": 12345`, `"allocs_per_op": -1`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
}

func TestParseModeRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := writeJSON(t, dir, "bench.txt", "no benchmarks here\n")
	var sb strings.Builder
	if err := run([]string{"-parse", in, "-o", filepath.Join(dir, "out.json")}, &sb); err == nil {
		t.Fatal("empty benchmark output accepted")
	}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json",
		`[{"name":"a:BenchmarkX","ns_per_op":100000,"allocs_per_op":1},
		  {"name":"a:BenchmarkRetired","ns_per_op":5,"allocs_per_op":0}]`)
	cur := writeJSON(t, dir, "cur.json",
		`[{"name":"a:BenchmarkX","ns_per_op":120000,"allocs_per_op":1},
		  {"name":"a:BenchmarkNew","ns_per_op":7,"allocs_per_op":0}]`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur, "-max-regression", "25"}, &sb); err != nil {
		t.Fatalf("+20%% failed a 25%% gate: %v\n%s", err, sb.String())
	}
	for _, want := range []string{"ok", "new", "retired", "1 benchmarks"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[{"name":"a:BenchmarkX","ns_per_op":100000,"allocs_per_op":1}]`)
	cur := writeJSON(t, dir, "cur.json", `[{"name":"a:BenchmarkX","ns_per_op":130000,"allocs_per_op":1}]`)
	var sb strings.Builder
	err := run([]string{"-baseline", base, "-current", cur, "-max-regression", "25"}, &sb)
	if err == nil {
		t.Fatalf("+30%% passed a 25%% gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkX") || !strings.Contains(err.Error(), "+30.0%") {
		t.Errorf("regression error %q does not name the benchmark and delta", err)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	dir := t.TempDir()
	// A 60 ns benchmark tripling is timer quantization at -benchtime=3x,
	// not a regression; the same ratio above the floor must still fail.
	base := writeJSON(t, dir, "base.json",
		`[{"name":"a:BenchmarkTiny","ns_per_op":60,"allocs_per_op":0},
		  {"name":"a:BenchmarkBig","ns_per_op":50000,"allocs_per_op":0}]`)
	okCur := writeJSON(t, dir, "ok.json",
		`[{"name":"a:BenchmarkTiny","ns_per_op":180,"allocs_per_op":0},
		  {"name":"a:BenchmarkBig","ns_per_op":51000,"allocs_per_op":0}]`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", okCur}, &sb); err != nil {
		t.Fatalf("sub-floor jitter failed the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "floor") {
		t.Errorf("report does not mark the sub-floor benchmark:\n%s", sb.String())
	}
	badCur := writeJSON(t, dir, "bad.json", `[{"name":"a:BenchmarkBig","ns_per_op":150000,"allocs_per_op":0}]`)
	sb.Reset()
	if err := run([]string{"-baseline", base, "-current", badCur}, &sb); err == nil {
		t.Fatal("above-floor regression passed the gate")
	}
}

func TestCompareToleratesImprovementAndIgnoresNewBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[{"name":"a:BenchmarkX","ns_per_op":100000,"allocs_per_op":1}]`)
	cur := writeJSON(t, dir, "cur.json",
		`[{"name":"a:BenchmarkX","ns_per_op":20000,"allocs_per_op":1},
		  {"name":"a:BenchmarkY","ns_per_op":999999,"allocs_per_op":1}]`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &sb); err != nil {
		t.Fatalf("improvement + new benchmark failed the gate: %v", err)
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[{"name":"a:BenchmarkX","ns_per_op":100000,"allocs_per_op":1000}]`)
	cur := writeJSON(t, dir, "cur.json", `[{"name":"a:BenchmarkX","ns_per_op":100000,"allocs_per_op":1400}]`)
	var sb strings.Builder
	err := run([]string{"-baseline", base, "-current", cur, "-max-regression", "25"}, &sb)
	if err == nil {
		t.Fatalf("+40%% allocs passed a 25%% gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "allocs/op") || !strings.Contains(err.Error(), "+40.0%") {
		t.Errorf("alloc regression error %q does not name allocs/op and delta", err)
	}
}

func TestCompareAllocNoiseFloorAndUnreported(t *testing.T) {
	dir := t.TempDir()
	// 4 -> 8 allocs doubles but sits under the -min-allocs floor; an
	// unreported side (-1) must never gate; a real alloc regression on a
	// reporting pair still fails even when ns/op is flat.
	base := writeJSON(t, dir, "base.json",
		`[{"name":"a:BenchmarkSmall","ns_per_op":50000,"allocs_per_op":4},
		  {"name":"a:BenchmarkSilent","ns_per_op":50000,"allocs_per_op":-1},
		  {"name":"a:BenchmarkBig","ns_per_op":50000,"allocs_per_op":500}]`)
	okCur := writeJSON(t, dir, "ok.json",
		`[{"name":"a:BenchmarkSmall","ns_per_op":50000,"allocs_per_op":8},
		  {"name":"a:BenchmarkSilent","ns_per_op":50000,"allocs_per_op":9999},
		  {"name":"a:BenchmarkBig","ns_per_op":50000,"allocs_per_op":550}]`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", okCur}, &sb); err != nil {
		t.Fatalf("sub-floor and unreported allocs failed the gate: %v\n%s", err, sb.String())
	}
	badCur := writeJSON(t, dir, "bad.json", `[{"name":"a:BenchmarkBig","ns_per_op":50000,"allocs_per_op":700}]`)
	sb.Reset()
	if err := run([]string{"-baseline", base, "-current", badCur}, &sb); err == nil {
		t.Fatal("above-floor alloc regression passed the gate")
	}
}

func TestCompareReportsAllocDeltas(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[{"name":"a:BenchmarkX","ns_per_op":100000,"allocs_per_op":200}]`)
	cur := writeJSON(t, dir, "cur.json", `[{"name":"a:BenchmarkX","ns_per_op":101000,"allocs_per_op":100}]`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "200 -> 100 allocs/op (-50.0%)") {
		t.Errorf("report missing the alloc delta:\n%s", sb.String())
	}
}

// TestParseMergePreservesFieldsAcrossRuns: the field-wise merge keeps
// each field's minimum independently — a run that omits allocations or
// percentile metrics never erases the values another run reported, and
// the fastest ns/op run does not drag its own (possibly worse) alloc
// count along.
func TestParseMergePreservesFieldsAcrossRuns(t *testing.T) {
	repeated := `pkg: asagen
BenchmarkX-8   10   900 ns/op
BenchmarkX-8   10   1500 ns/op   7 allocs/op
BenchmarkX-8   10   1100 ns/op   9 allocs/op
BenchmarkY-8   10   50000 ns/op   40000 p50-ns   90000 p99-ns   12 allocs/op
BenchmarkY-8   10   48000 ns/op   42000 p50-ns   80000 p99-ns   15 allocs/op
BenchmarkY-8   10   52000 ns/op
`
	benches, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	x := byName["asagen:BenchmarkX"]
	if x.NsPerOp != 900 || x.AllocsPerOp != 7 {
		t.Errorf("X = %+v, want ns 900 with the min reported allocs 7", x)
	}
	y := byName["asagen:BenchmarkY"]
	if y.NsPerOp != 48000 || y.AllocsPerOp != 12 || y.P50Ns != 40000 || y.P99Ns != 80000 {
		t.Errorf("Y = %+v, want field-wise minima 48000/12/40000/80000", y)
	}
	if x.P50Ns != 0 || x.P99Ns != 0 {
		t.Errorf("X percentiles = %v/%v, want 0 (never reported)", x.P50Ns, x.P99Ns)
	}
}

// TestCompareGatesPercentiles: a p99 regression beyond the threshold
// fails the gate even when ns/op holds steady; within the threshold it
// is reported but passes, and entries without percentiles stay ungated.
func TestCompareGatesPercentiles(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json",
		`[{"name":"a:BenchmarkServe/warm","ns_per_op":90000,"allocs_per_op":90,"p50_ns":60000,"p99_ns":100000},
		  {"name":"a:BenchmarkPlain","ns_per_op":50000,"allocs_per_op":-1}]`)

	regressed := writeJSON(t, dir, "bad.json",
		`[{"name":"a:BenchmarkServe/warm","ns_per_op":91000,"allocs_per_op":90,"p50_ns":61000,"p99_ns":140000},
		  {"name":"a:BenchmarkPlain","ns_per_op":50000,"allocs_per_op":-1}]`)
	var sb strings.Builder
	err := run([]string{"-baseline", base, "-current", regressed}, &sb)
	if err == nil || !strings.Contains(err.Error(), "p99_ns") {
		t.Fatalf("p99 regression passed the gate: err=%v\n%s", err, sb.String())
	}

	ok := writeJSON(t, dir, "ok.json",
		`[{"name":"a:BenchmarkServe/warm","ns_per_op":91000,"allocs_per_op":90,"p50_ns":65000,"p99_ns":110000},
		  {"name":"a:BenchmarkPlain","ns_per_op":50000,"allocs_per_op":-1}]`)
	sb.Reset()
	if err := run([]string{"-baseline", base, "-current", ok}, &sb); err != nil {
		t.Fatalf("in-threshold percentile drift failed the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "p99_ns") {
		t.Errorf("percentile deltas not reported:\n%s", sb.String())
	}

	// A current run that lost its percentiles (e.g. ran without the serve
	// benchmarks' metrics) is not a regression.
	bare := writeJSON(t, dir, "bare.json",
		`[{"name":"a:BenchmarkServe/warm","ns_per_op":91000,"allocs_per_op":90}]`)
	sb.Reset()
	if err := run([]string{"-baseline", base, "-current", bare}, &sb); err != nil {
		t.Fatalf("missing percentiles failed the gate: %v\n%s", err, sb.String())
	}
}

// TestComparePercentileNoiseFloor: percentiles under the ns/op noise
// floor on both sides never gate.
func TestComparePercentileNoiseFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json",
		`[{"name":"a:BenchmarkTiny","ns_per_op":50000,"allocs_per_op":-1,"p50_ns":2000,"p99_ns":4000}]`)
	cur := writeJSON(t, dir, "cur.json",
		`[{"name":"a:BenchmarkTiny","ns_per_op":50000,"allocs_per_op":-1,"p50_ns":5000,"p99_ns":9000}]`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &sb); err != nil {
		t.Fatalf("sub-floor percentile drift failed the gate: %v\n%s", err, sb.String())
	}
}
