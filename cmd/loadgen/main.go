// Command loadgen drives the /v1 artifact route of a generation server
// and reports tail latency — the serve-path companion to benchgate's
// ns/op gating and a first slice of the fleet-style load harness the
// ROADMAP's distributed serve tier calls for.
//
// It runs in one of two modes. Closed loop (the default) keeps -c
// workers saturated: each worker issues its next request the moment the
// previous response is drained, so the measured distribution reflects
// the server under full back-pressure. Open loop (-rate) schedules
// arrivals on a fixed interval regardless of completions and measures
// each request from its scheduled arrival time, so queueing delay under
// overload is charged to the latency distribution instead of silently
// thinning the arrival stream (no coordinated omission).
//
// The request mix is the cross product of -models × -formats, cycled
// round-robin. With -url it targets one or more live servers — a
// comma-separated list round-robins arrivals across the fleet, e.g. the
// nodes of a `fsmgen serve -cluster` ring; without it, it boots an
// in-process server over its own
// pipeline — with -store persisting artefacts to disk — so a single
// binary can measure the full HTTP stack without external orchestration.
//
// Output is a p50/p95/p99 row per run on stdout plus, with -out, a JSON
// report embedding the full latency histogram for offline merging and
// CI artifact upload.
//
// Examples:
//
//	loadgen -duration 10s -c 16
//	loadgen -url http://localhost:8091 -models commit,termination -formats text,dot
//	loadgen -rate 500 -duration 30s -out latency.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"asagen/internal/api"
	"asagen/internal/artifact"
	"asagen/internal/latency"
	"asagen/internal/models"
	"asagen/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// report is the JSON artifact written by -out: run parameters, outcome
// counters and the full latency histogram.
type report struct {
	Target     string             `json:"target"`
	Mode       string             `json:"mode"` // "closed" or "open"
	Concurrent int                `json:"concurrency"`
	RatePerSec float64            `json:"rate_per_sec,omitempty"`
	DurationNs int64              `json:"duration_ns"`
	Requests   int64              `json:"requests"`
	Errors     int64              `json:"errors"`
	Throughput float64            `json:"throughput_rps"`
	P50Ns      int64              `json:"p50_ns"`
	P95Ns      int64              `json:"p95_ns"`
	P99Ns      int64              `json:"p99_ns"`
	MaxNs      int64              `json:"max_ns"`
	Latency    *latency.Histogram `json:"latency"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		url         = fs.String("url", "", "comma-separated base URLs of running servers, arrivals round-robin across them (empty = boot an in-process server)")
		duration    = fs.Duration("duration", 5*time.Second, "measurement duration")
		concurrency = fs.Int("c", 8, "concurrent workers")
		rate        = fs.Float64("rate", 0, "open-loop arrival rate per second (0 = closed loop)")
		modelsFlag  = fs.String("models", "commit,termination", "comma-separated model mix")
		formats     = fs.String("formats", "text", "comma-separated format mix")
		param       = fs.Int("r", 0, "model parameter (0 = each model's default)")
		warmup      = fs.Duration("warmup", 500*time.Millisecond, "unrecorded warm-up period")
		out         = fs.String("out", "", "write the JSON report (with the full histogram) to this file")
		storeDir    = fs.String("store", "", "artifact store directory for the in-process server (ignored with -url)")
		maxErrRate  = fs.Float64("max-error-rate", 0.01, "fail when errors/requests exceeds this fraction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("concurrency must be at least 1")
	}

	bases := splitBases(*url)
	if len(bases) == 0 {
		opts := []artifact.Option{artifact.WithRegistry(models.Default().Clone())}
		if *storeDir != "" {
			s, err := store.Open(*storeDir)
			if err != nil {
				return fmt.Errorf("open artifact store: %w", err)
			}
			defer s.Close()
			opts = append(opts, artifact.WithStore(s))
		}
		ts := httptest.NewServer(api.NewHandler(artifact.New(opts...)))
		defer ts.Close()
		bases = []string{ts.URL}
	}

	// Targets are ordered base-fastest — every model×format path expands
	// to one target per base, consecutively — so the workers' i%len cycle
	// round-robins arrivals across the servers.
	var targets []string
	for _, model := range strings.Split(*modelsFlag, ",") {
		model = strings.TrimSpace(model)
		if model == "" {
			continue
		}
		for _, format := range strings.Split(*formats, ",") {
			format = strings.TrimSpace(format)
			if format == "" {
				continue
			}
			path := "/v1/models/" + model + "/artifacts/" + format
			if *param > 0 {
				path += fmt.Sprintf("?r=%d", *param)
			}
			for _, base := range bases {
				targets = append(targets, base+path)
			}
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("empty model×format mix")
	}

	client := &http.Client{Timeout: time.Minute}
	// One request per target outside the measurement window verifies the
	// mix before committing to a run: a mistyped model name fails fast
	// instead of producing a histogram of 404 latencies.
	for _, t := range targets {
		if err := fetch(client, t); err != nil {
			return fmt.Errorf("probe %s: %w", t, err)
		}
	}

	rep := report{Target: strings.Join(bases, ","), Mode: "closed", Concurrent: *concurrency}
	var hist *latency.Histogram
	var errs int64
	if *rate > 0 {
		rep.Mode, rep.RatePerSec = "open", *rate
		hist, errs = openLoop(client, targets, *rate, *concurrency, *warmup, *duration)
	} else {
		hist, errs = closedLoop(client, targets, *concurrency, *warmup, *duration)
	}

	rep.DurationNs = int64(*duration)
	rep.Requests = hist.Count()
	rep.Errors = errs
	rep.Throughput = float64(hist.Count()) / duration.Seconds()
	rep.P50Ns = int64(hist.Quantile(0.50))
	rep.P95Ns = int64(hist.Quantile(0.95))
	rep.P99Ns = int64(hist.Quantile(0.99))
	rep.MaxNs = int64(hist.Max())
	rep.Latency = hist

	fmt.Fprintf(stdout, "loadgen: %s %s, %d workers, %d targets\n", rep.Mode, duration, *concurrency, len(targets))
	fmt.Fprintf(stdout, "requests %d  errors %d  throughput %.1f req/s\n", rep.Requests, rep.Errors, rep.Throughput)
	fmt.Fprintf(stdout, "latency  p50 %v  p95 %v  p99 %v  max %v\n",
		hist.Quantile(0.50), hist.Quantile(0.95), hist.Quantile(0.99), hist.Max())

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}

	if rep.Requests == 0 {
		return fmt.Errorf("no requests completed")
	}
	if frac := float64(errs) / float64(rep.Requests+errs); frac > *maxErrRate {
		return fmt.Errorf("error rate %.2f%% exceeds %.2f%%", frac*100, *maxErrRate*100)
	}
	return nil
}

// splitBases splits the comma-separated -url value, trimming whitespace
// and trailing slashes and dropping empty items.
func splitBases(s string) []string {
	var bases []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSuffix(strings.TrimSpace(b), "/"); b != "" {
			bases = append(bases, b)
		}
	}
	return bases
}

// fetch issues one GET and drains the body, failing on any non-200.
func fetch(client *http.Client, target string) error {
	resp, err := client.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// closedLoop keeps every worker saturated for the duration: latency is
// measured per request, from issue to fully drained body, after the
// warm-up period. Workers record into private histograms merged at the
// end; only the error counter is shared.
func closedLoop(client *http.Client, targets []string, workers int, warmup, duration time.Duration) (*latency.Histogram, int64) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total latency.Histogram
		errs  int64
	)
	start := time.Now()
	stop := start.Add(warmup + duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var h latency.Histogram
			var localErrs int64
			for i := w; ; i++ {
				begin := time.Now()
				if begin.After(stop) {
					break
				}
				err := fetch(client, targets[i%len(targets)])
				if begin.Sub(start) < warmup {
					continue
				}
				if err != nil {
					localErrs++
					continue
				}
				h.Record(time.Since(begin))
			}
			mu.Lock()
			total.Merge(&h)
			errs += localErrs
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return &total, errs
}

// openLoop schedules arrivals at the fixed rate and measures each
// request from its scheduled arrival time, so requests that queue behind
// a slow server are charged their waiting time (no coordinated
// omission). The worker pool bounds in-flight requests; when all workers
// are busy past an arrival's slot, the wait shows up in the latency.
func openLoop(client *http.Client, targets []string, rate float64, workers int, warmup, duration time.Duration) (*latency.Histogram, int64) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	type arrival struct {
		due time.Time
		i   int
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total latency.Histogram
		errs  int64
	)
	arrivals := make(chan arrival, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var h latency.Histogram
			var localErrs int64
			for a := range arrivals {
				if wait := time.Until(a.due); wait > 0 {
					time.Sleep(wait)
				}
				err := fetch(client, targets[a.i%len(targets)])
				if a.due.Sub(start) < warmup {
					continue
				}
				if err != nil {
					localErrs++
					continue
				}
				h.Record(time.Since(a.due))
			}
			mu.Lock()
			total.Merge(&h)
			errs += localErrs
			mu.Unlock()
		}()
	}
	end := start.Add(warmup + duration)
	for i := 0; ; i++ {
		due := start.Add(time.Duration(i) * interval)
		if due.After(end) {
			break
		}
		arrivals <- arrival{due: due, i: i}
	}
	close(arrivals)
	wg.Wait()
	return &total, errs
}
