package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asagen/internal/api"
	"asagen/internal/artifact"
)

// TestClosedLoopReport: a short closed-loop pass against the in-process
// server completes without errors, reports ordered percentiles and writes
// a decodable JSON report whose histogram agrees with the summary rows.
func TestClosedLoopReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "latency.json")
	var buf strings.Builder
	err := run([]string{
		"-duration", "300ms", "-warmup", "50ms", "-c", "4",
		"-models", "commit", "-formats", "text", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v (output: %s)", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not decode: %v", err)
	}
	if rep.Mode != "closed" || rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if !(rep.P50Ns > 0 && rep.P50Ns <= rep.P95Ns && rep.P95Ns <= rep.P99Ns && rep.P99Ns <= rep.MaxNs) {
		t.Errorf("percentiles not ordered: p50=%d p95=%d p99=%d max=%d", rep.P50Ns, rep.P95Ns, rep.P99Ns, rep.MaxNs)
	}
	if rep.Latency == nil || rep.Latency.Count() != rep.Requests {
		t.Errorf("embedded histogram count = %v, want %d", rep.Latency, rep.Requests)
	}
	if got := int64(rep.Latency.Quantile(0.99)); got != rep.P99Ns {
		t.Errorf("histogram p99 %d != summary p99 %d", got, rep.P99Ns)
	}
	if !strings.Contains(buf.String(), "p99") {
		t.Errorf("stdout carries no percentile row: %q", buf.String())
	}
}

// TestOpenLoopAgainstLiveServer: the open-loop mode drives an external
// URL (here a handler this test owns) at a fixed arrival rate.
func TestOpenLoopAgainstLiveServer(t *testing.T) {
	ts := httptest.NewServer(api.NewHandler(artifact.New()))
	defer ts.Close()
	var buf strings.Builder
	err := run([]string{
		"-url", ts.URL, "-rate", "200", "-duration", "250ms", "-warmup", "50ms", "-c", "4",
		"-models", "termination", "-formats", "text",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v (output: %s)", err, buf.String())
	}
	if !strings.Contains(buf.String(), "open") {
		t.Errorf("mode row missing from %q", buf.String())
	}
}

// TestProbeFailsFastOnBadMix: a mistyped model name fails before any
// measurement window opens.
func TestProbeFailsFastOnBadMix(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-duration", "10s", "-models", "no-such-model"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "probe") {
		t.Fatalf("err = %v, want probe failure", err)
	}
}

// TestStorePersistsAcrossRuns: two runs over one -store dir leave the
// second run's server disk-warm (no generation visible in its latency
// profile is not assertable here, but the store directory must be
// populated and reusable).
func TestStorePersistsAcrossRuns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	for i := 0; i < 2; i++ {
		var buf strings.Builder
		err := run([]string{
			"-duration", "100ms", "-warmup", "10ms", "-c", "2",
			"-models", "commit", "-formats", "text", "-store", dir,
		}, &buf)
		if err != nil {
			t.Fatalf("run %d: %v (output: %s)", i, err, buf.String())
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("store blobs missing after runs: %v", err)
	}
}
