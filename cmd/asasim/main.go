// Command asasim runs the full ASA storage stack in simulation: a Chord
// overlay, replicated block storage, and the version-history service whose
// peer sets execute the generated BFT commit machines. It stores a sequence
// of file versions — optionally with Byzantine peers and concurrent clients
// — and reports protocol statistics. The -model flag selects which
// commit-vocabulary model from the registry generates the peer-set
// machines (commit or commit-redundant).
//
//	asasim -nodes 32 -r 4 -updates 5 -byzantine 1 -seed 7
//	asasim -model commit-redundant -updates 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"asagen"
	"asagen/internal/chord"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/simnet"
	"asagen/internal/storage"
	"asagen/internal/version"
)

// commitModelNames lists the registry subset the version service can
// execute, from the SDK client's model metadata.
func commitModelNames(client *asagen.Client) []string {
	var names []string
	for _, m := range client.Models() {
		if m.Vocabulary == asagen.VocabularyCommit {
			names = append(names, m.Name)
		}
	}
	return names
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "asasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	sdk := asagen.NewClient()
	commitNames := strings.Join(commitModelNames(sdk), ", ")
	fs := flag.NewFlagSet("asasim", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 32, "overlay size")
		r         = fs.Int("r", 4, "replication factor")
		modelName = fs.String("model", "commit", "peer-set machine model: "+commitNames)
		updates   = fs.Int("updates", 5, "file versions to commit")
		byzantine = fs.Int("byzantine", 0, "peer-set members to make Byzantine (silent)")
		seed      = fs.Int64("seed", 1, "simulation seed")
		file      = fs.String("file", "report.txt", "file name (determines the GUID)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate the scenario through the SDK, so unknown names and
	// non-commit vocabularies both fail fast naming exactly the subset the
	// version service can execute.
	info, err := sdk.Model(*modelName)
	if err != nil {
		return fmt.Errorf("unknown model %q; the version service can execute: %s",
			*modelName, commitNames)
	}
	if info.Vocabulary != asagen.VocabularyCommit {
		return fmt.Errorf("model %q does not speak the commit vocabulary; the version service can execute: %s",
			info.Name, commitNames)
	}
	entry, err := models.Get(*modelName)
	if err != nil {
		return err
	}

	net := simnet.New(*seed)
	ring, err := chord.Build(*seed, *nodes)
	if err != nil {
		return err
	}
	fmt.Printf("overlay: %d nodes, replication factor %d, model %s\n", ring.Size(), *r, info.Name)

	// Storage layer: every overlay node also stores blocks, under a
	// distinct network identity so the two services stay separable.
	blockNodes := make(map[simnet.NodeID]*storage.Node, ring.Size())
	for _, n := range ring.Nodes() {
		id := simnet.NodeID("blocks/" + n.Name())
		node := storage.NewNode(id, storage.Honest)
		blockNodes[id] = node
		if err := net.AddNode(id, node); err != nil {
			return err
		}
	}

	svc, err := version.NewService(context.Background(), net, ring, *r,
		version.WithModelBuilder(func(r int) (core.Model, error) { return entry.Build(r) }))
	if err != nil {
		return err
	}
	client, err := svc.NewClient("client")
	if err != nil {
		return err
	}

	guid := storage.NewGUID(*file)
	peers, err := svc.PeerSet(guid)
	if err != nil {
		return err
	}
	fmt.Printf("version peer set for %s (GUID %s):\n", *file, guid.Short())
	seen := map[simnet.NodeID]bool{}
	flipped := 0
	for _, p := range peers {
		if seen[p] {
			continue
		}
		seen[p] = true
		if flipped < *byzantine {
			if err := svc.SetBehaviour(p, version.SilentMember); err != nil {
				return err
			}
			flipped++
			fmt.Printf("  %s (BYZANTINE: silent)\n", p)
			continue
		}
		fmt.Printf("  %s\n", p)
	}

	for i := 0; i < *updates; i++ {
		content := []byte(fmt.Sprintf("%s: contents of version %d", *file, i+1))
		pid := storage.ComputePID(content)
		if err := client.Update(guid, pid); err != nil {
			return fmt.Errorf("commit version %d: %w", i+1, err)
		}
		fmt.Printf("committed version %d: PID %s (attempts: %d)\n", i+1, pid.Short(), client.Attempts)
	}
	net.Run(0)

	history, err := client.History(guid)
	if err != nil {
		return err
	}
	fmt.Printf("\nagreed history (%d versions, f+1 consistent replies):\n", len(history))
	for i, pid := range history {
		fmt.Printf("  v%d -> %s\n", i+1, pid.Short())
	}

	st := net.Stats()
	fmt.Printf("\nnetwork: %d sent, %d delivered, %d dropped, %d timers, virtual time %v\n",
		st.Sent, st.Delivered, st.Dropped, st.TimersFired, net.Now())
	return nil
}
