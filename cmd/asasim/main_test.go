package main

import (
	"strings"
	"testing"
)

// TestRunSmallCluster drives the full stack end to end: overlay build,
// peer-set location, three committed versions, agreed history read-back.
func TestRunSmallCluster(t *testing.T) {
	if err := run([]string{"-nodes", "16", "-updates", "3", "-seed", "4"}); err != nil {
		t.Fatalf("asasim: %v", err)
	}
}

// TestRunWithByzantineMember tolerates one silent peer-set member (f = 1).
func TestRunWithByzantineMember(t *testing.T) {
	if err := run([]string{"-nodes", "24", "-updates", "2", "-byzantine", "1", "-seed", "9"}); err != nil {
		t.Fatalf("asasim with byzantine member: %v", err)
	}
}

// TestRunRedundantModel drives the stack with the peer-set machines
// generated from the commit-redundant registry entry: the merged machine
// family is identical, so the protocol outcome must be too.
func TestRunRedundantModel(t *testing.T) {
	if err := run([]string{"-nodes", "16", "-updates", "2", "-seed", "4", "-model", "commit-redundant"}); err != nil {
		t.Fatalf("asasim -model commit-redundant: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-r", "2"}); err == nil {
		t.Error("replication factor 2 accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-model", "nonsense"}); err == nil {
		t.Error("unknown model accepted")
	} else {
		// The unknown-model error names exactly the commit-vocabulary
		// subset the version service can execute, like the vocabulary
		// error below.
		for _, want := range []string{"commit", "commit-redundant"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("unknown-model error %q missing %q", err, want)
			}
		}
	}
	if err := run([]string{"-model", "consensus"}); err == nil {
		t.Error("non-commit-vocabulary model accepted by the version service")
	}
}

// TestRejectsNonCommitModelNamingValidSubset: the fail-fast error names
// exactly the registry subset the version service can execute, so the
// operator never has to guess which -model values are valid.
func TestRejectsNonCommitModelNamingValidSubset(t *testing.T) {
	err := run([]string{"-model", "termination"})
	if err == nil {
		t.Fatal("termination model accepted by the version service")
	}
	for _, want := range []string{"commit", "commit-redundant", "does not speak the commit vocabulary"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	// The simulation must fail before any network or overlay work.
	if !strings.Contains(err.Error(), `"termination"`) {
		t.Errorf("error %q does not name the rejected model", err)
	}
}
