package main

import "testing"

// TestRunMatchesPaper executes the Table 1 reproduction; run returns an
// error when any generated count deviates from the published numbers, so a
// plain invocation is the regression check.
func TestRunMatchesPaper(t *testing.T) {
	if err := run([]string{"-repeats", "1"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
}

func TestRunRedundantVariant(t *testing.T) {
	// The redundant reading merges to the same published finals.
	if err := run([]string{"-repeats", "1", "-variant", "redundant"}); err != nil {
		t.Fatalf("table1 -variant redundant: %v", err)
	}
}

func TestRunOtherModels(t *testing.T) {
	// Non-commit registry entries print a sweep table with no paper
	// comparison; any generation failure surfaces as an error.
	if err := run([]string{"-repeats", "1", "-model", "consensus"}); err != nil {
		t.Fatalf("table1 -model consensus: %v", err)
	}
	if err := run([]string{"-repeats", "1", "-model", "termination", "-params", "1,3,5"}); err != nil {
		t.Fatalf("table1 -model termination -params: %v", err)
	}
}

func TestRunWorkers(t *testing.T) {
	if err := run([]string{"-repeats", "1", "-workers", "4"}); err != nil {
		t.Fatalf("table1 -workers 4: %v", err)
	}
}

func TestRunCustomParams(t *testing.T) {
	// Off-paper parameters skip the comparison columns instead of
	// reporting mismatches.
	if err := run([]string{"-repeats", "1", "-params", "5,6"}); err != nil {
		t.Fatalf("table1 -params 5,6: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-variant", "nonsense"}); err == nil {
		t.Error("unknown variant accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-model", "nonsense"}); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"-model", "consensus", "-variant", "redundant"}); err == nil {
		t.Error("redundant variant accepted for non-commit model")
	}
	if err := run([]string{"-params", "4,nope"}); err == nil {
		t.Error("malformed -params accepted")
	}
}
