package main

import "testing"

// TestRunMatchesPaper executes the Table 1 reproduction; run returns an
// error when any generated count deviates from the published numbers, so a
// plain invocation is the regression check.
func TestRunMatchesPaper(t *testing.T) {
	if err := run([]string{"-repeats", "1"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
}

func TestRunRedundantVariant(t *testing.T) {
	// The redundant reading merges to the same published finals.
	if err := run([]string{"-repeats", "1", "-variant", "redundant"}); err != nil {
		t.Fatalf("table1 -variant redundant: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-variant", "nonsense"}); err == nil {
		t.Error("unknown variant accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
