// Command table1 regenerates the paper's Table 1: for each published
// (f, r) pair it executes the commit abstract model through the public
// asagen SDK, reports the initial and final state counts — which must
// match the paper exactly — and measures the wall-clock generation time
// on this machine (the paper's times were taken on a 2.33 GHz Core 2
// Duo; only the growth shape is comparable).
//
// With -model set to another registry entry the command prints the
// analogous sweep table for that scenario (no published numbers exist, so
// no comparison columns are shown).
//
//	table1 [-paper] [-variant strict|redundant]
//	table1 -model consensus -params 3,5,7,9
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"asagen"
)

// paperRows are the published Table 1 rows: fault tolerance, replication
// factor, initial and final state counts, and the paper's generation time.
var paperRows = []struct {
	f, r          int
	initialStates int
	finalStates   int
	paperSeconds  float64
}{
	{1, 4, 512, 33, 0.10},
	{2, 7, 1568, 85, 0.12},
	{4, 13, 5408, 261, 0.38},
	{8, 25, 20000, 901, 2.2},
	{15, 46, 67712, 2945, 19.1},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	client := asagen.NewClient()
	modelNames := make([]string, 0, len(client.Models()))
	for _, m := range client.Models() {
		modelNames = append(modelNames, m.Name)
	}

	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	modelName := fs.String("model", "commit", "registered model: "+strings.Join(modelNames, ", "))
	showPaper := fs.Bool("paper", true, "include the paper's published numbers for comparison (commit only)")
	variant := fs.String("variant", "strict", "commit Fig. 9 reading: strict or redundant")
	params := fs.String("params", "", "comma-separated parameter values (default: the model's sweep)")
	workers := fs.Int("workers", 1, "parallel frontier-expansion workers")
	repeats := fs.Int("repeats", 3, "measurement repeats per row (minimum taken)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *variant {
	case "strict":
	case "redundant":
		if *modelName != "commit" && *modelName != "commit-redundant" {
			return fmt.Errorf("-variant redundant applies only to the commit model, not %q", *modelName)
		}
		*modelName = "commit-redundant"
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	info, err := client.Model(*modelName)
	if err != nil {
		return err
	}

	// WithoutCache keeps every repeat an honest from-scratch generation —
	// the measurement must not be answered from the client's memo.
	genOpts := []asagen.GenerateOption{asagen.WithoutDescriptions(), asagen.WithoutCache()}
	if *workers > 1 {
		genOpts = append(genOpts, asagen.WithWorkers(*workers))
	}

	commitFamily := info.Vocabulary == asagen.VocabularyCommit
	if !commitFamily {
		*showPaper = false
	}

	sweep := info.SweepParams
	if *params != "" {
		sweep, err = parseParams(*params)
		if err != nil {
			return err
		}
		// Custom parameter values have no published counterpart rows.
		*showPaper = false
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	header := "f\tr\tinitial states\tfinal states\tgeneration time (s)"
	if !commitFamily {
		header = info.ParamName + "\tinitial states\tfinal states\tgeneration time (s)"
	}
	if *showPaper {
		header += "\tpaper initial\tpaper final\tpaper time (s)"
	}
	fmt.Fprintln(w, header)

	paperByR := make(map[int]int, len(paperRows))
	for i, row := range paperRows {
		paperByR[row.r] = i
	}

	ctx := context.Background()
	mismatches := 0
	for _, param := range sweep {
		var machine *asagen.Machine
		best := time.Duration(0)
		for rep := 0; rep < max(1, *repeats); rep++ {
			opts := append([]asagen.GenerateOption{asagen.WithParam(param)}, genOpts...)
			start := time.Now()
			machine, err = client.Generate(ctx, *modelName, opts...)
			elapsed := time.Since(start)
			if err != nil {
				return err
			}
			if rep == 0 || elapsed < best {
				best = elapsed
			}
		}
		st := machine.Stats()
		var line string
		if commitFamily {
			f := (param - 1) / 3
			if ft, ok := machine.FaultTolerance(); ok {
				f = ft
			}
			line = fmt.Sprintf("%d\t%d\t%d\t%d\t%.4f",
				f, param, st.InitialStates, st.FinalStates, best.Seconds())
		} else {
			line = fmt.Sprintf("%d\t%d\t%d\t%.4f",
				param, st.InitialStates, st.FinalStates, best.Seconds())
		}
		if i, ok := paperByR[param]; *showPaper && ok {
			row := paperRows[i]
			line += fmt.Sprintf("\t%d\t%d\t%.2f", row.initialStates, row.finalStates, row.paperSeconds)
			if st.InitialStates != row.initialStates ||
				st.FinalStates != row.finalStates {
				line += "\tMISMATCH"
				mismatches++
			}
		}
		fmt.Fprintln(w, line)
	}
	if mismatches > 0 {
		w.Flush()
		return fmt.Errorf("%d rows deviate from the published counts", mismatches)
	}
	return nil
}

func parseParams(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -params entry %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
