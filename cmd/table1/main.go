// Command table1 regenerates the paper's Table 1: for each published
// (f, r) pair it executes the commit abstract model, reports the initial
// and final state counts — which must match the paper exactly — and
// measures the wall-clock generation time on this machine (the paper's
// times were taken on a 2.33 GHz Core 2 Duo; only the growth shape is
// comparable).
//
// With -model set to another registry entry the command prints the
// analogous sweep table for that scenario (no published numbers exist, so
// no comparison columns are shown).
//
//	table1 [-paper] [-variant strict|redundant]
//	table1 -model consensus -params 3,5,7,9
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/models"
)

// paperRows are the published Table 1 rows: fault tolerance, replication
// factor, initial and final state counts, and the paper's generation time.
var paperRows = []struct {
	f, r          int
	initialStates int
	finalStates   int
	paperSeconds  float64
}{
	{1, 4, 512, 33, 0.10},
	{2, 7, 1568, 85, 0.12},
	{4, 13, 5408, 261, 0.38},
	{8, 25, 20000, 901, 2.2},
	{15, 46, 67712, 2945, 19.1},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	modelName := fs.String("model", "commit", "registered model: "+strings.Join(models.Names(), ", "))
	showPaper := fs.Bool("paper", true, "include the paper's published numbers for comparison (commit only)")
	variant := fs.String("variant", "strict", "commit Fig. 9 reading: strict or redundant")
	params := fs.String("params", "", "comma-separated parameter values (default: the model's sweep)")
	workers := fs.Int("workers", 1, "parallel frontier-expansion workers")
	repeats := fs.Int("repeats", 3, "measurement repeats per row (minimum taken)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *variant {
	case "strict":
	case "redundant":
		if *modelName != "commit" && *modelName != "commit-redundant" {
			return fmt.Errorf("-variant redundant applies only to the commit model, not %q", *modelName)
		}
		*modelName = "commit-redundant"
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	entry, err := models.Get(*modelName)
	if err != nil {
		return err
	}

	genOpts := []core.Option{core.WithoutDescriptions()}
	if *workers > 1 {
		genOpts = append(genOpts, core.WithWorkers(*workers))
	}

	commitFamily := entry.Vocabulary == models.VocabularyCommit
	if !commitFamily {
		*showPaper = false
	}

	sweep := entry.SweepParams
	if *params != "" {
		sweep, err = parseParams(*params)
		if err != nil {
			return err
		}
		// Custom parameter values have no published counterpart rows.
		*showPaper = false
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	header := "f\tr\tinitial states\tfinal states\tgeneration time (s)"
	if !commitFamily {
		header = entry.ParamName + "\tinitial states\tfinal states\tgeneration time (s)"
	}
	if *showPaper {
		header += "\tpaper initial\tpaper final\tpaper time (s)"
	}
	fmt.Fprintln(w, header)

	paperByR := make(map[int]int, len(paperRows))
	for i, row := range paperRows {
		paperByR[row.r] = i
	}

	mismatches := 0
	for _, param := range sweep {
		model, err := entry.Build(param)
		if err != nil {
			return err
		}
		var machine *core.StateMachine
		best := time.Duration(0)
		for rep := 0; rep < max(1, *repeats); rep++ {
			start := time.Now()
			machine, err = core.Generate(model, genOpts...)
			elapsed := time.Since(start)
			if err != nil {
				return err
			}
			if rep == 0 || elapsed < best {
				best = elapsed
			}
		}
		var line string
		if commitFamily {
			f := (param - 1) / 3
			if cm, ok := model.(*commit.Model); ok {
				f = cm.FaultTolerance()
			}
			line = fmt.Sprintf("%d\t%d\t%d\t%d\t%.4f",
				f, param, machine.Stats.InitialStates, machine.Stats.FinalStates, best.Seconds())
		} else {
			line = fmt.Sprintf("%d\t%d\t%d\t%.4f",
				param, machine.Stats.InitialStates, machine.Stats.FinalStates, best.Seconds())
		}
		if i, ok := paperByR[param]; *showPaper && ok {
			row := paperRows[i]
			line += fmt.Sprintf("\t%d\t%d\t%.2f", row.initialStates, row.finalStates, row.paperSeconds)
			if machine.Stats.InitialStates != row.initialStates ||
				machine.Stats.FinalStates != row.finalStates {
				line += "\tMISMATCH"
				mismatches++
			}
		}
		fmt.Fprintln(w, line)
	}
	if mismatches > 0 {
		w.Flush()
		return fmt.Errorf("%d rows deviate from the published counts", mismatches)
	}
	return nil
}

func parseParams(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -params entry %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
