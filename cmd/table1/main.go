// Command table1 regenerates the paper's Table 1: for each published
// (f, r) pair it executes the abstract model, reports the initial and final
// state counts — which must match the paper exactly — and measures the
// wall-clock generation time on this machine (the paper's times were taken
// on a 2.33 GHz Core 2 Duo; only the growth shape is comparable).
//
//	table1 [-paper] [-variant strict|redundant]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"asagen/internal/commit"
	"asagen/internal/core"
)

// paperRows are the published Table 1 rows: fault tolerance, replication
// factor, initial and final state counts, and the paper's generation time.
var paperRows = []struct {
	f, r          int
	initialStates int
	finalStates   int
	paperSeconds  float64
}{
	{1, 4, 512, 33, 0.10},
	{2, 7, 1568, 85, 0.12},
	{4, 13, 5408, 261, 0.38},
	{8, 25, 20000, 901, 2.2},
	{15, 46, 67712, 2945, 19.1},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	showPaper := fs.Bool("paper", true, "include the paper's published numbers for comparison")
	variant := fs.String("variant", "strict", "Fig. 9 reading: strict or redundant")
	repeats := fs.Int("repeats", 3, "measurement repeats per row (minimum taken)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []commit.Option
	switch *variant {
	case "strict":
	case "redundant":
		opts = append(opts, commit.WithVariant(commit.RedundantVariant()))
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	header := "f\tr\tinitial states\tfinal states\tgeneration time (s)"
	if *showPaper {
		header += "\tpaper initial\tpaper final\tpaper time (s)"
	}
	fmt.Fprintln(w, header)

	mismatches := 0
	for _, row := range paperRows {
		model, err := commit.NewModel(row.r, opts...)
		if err != nil {
			return err
		}
		var machine *core.StateMachine
		best := time.Duration(0)
		for rep := 0; rep < max(1, *repeats); rep++ {
			start := time.Now()
			machine, err = core.Generate(model, core.WithoutDescriptions())
			elapsed := time.Since(start)
			if err != nil {
				return err
			}
			if rep == 0 || elapsed < best {
				best = elapsed
			}
		}
		line := fmt.Sprintf("%d\t%d\t%d\t%d\t%.4f",
			row.f, row.r, machine.Stats.InitialStates, machine.Stats.FinalStates,
			best.Seconds())
		if *showPaper {
			line += fmt.Sprintf("\t%d\t%d\t%.2f", row.initialStates, row.finalStates, row.paperSeconds)
			if machine.Stats.InitialStates != row.initialStates ||
				machine.Stats.FinalStates != row.finalStates {
				line += "\tMISMATCH"
				mismatches++
			}
		}
		fmt.Fprintln(w, line)
	}
	if mismatches > 0 {
		w.Flush()
		return fmt.Errorf("%d rows deviate from the published counts", mismatches)
	}
	return nil
}
