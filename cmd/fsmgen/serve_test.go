package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"asagen/internal/artifact"
)

func serveGet(t *testing.T, ts *httptest.Server, path string, header http.Header) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestServeMachineEndpoint(t *testing.T) {
	p := artifact.New()
	ts := httptest.NewServer(newServeHandler(p))
	defer ts.Close()

	resp, body := serveGet(t, ts, "/machine/commit?format=dot&r=4", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.HasPrefix(body, "digraph") {
		t.Errorf("body is not a DOT document: %.40s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "graphviz") {
		t.Errorf("Content-Type = %q", ct)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || resp.Header.Get("X-Machine-Fingerprint") == "" {
		t.Error("missing ETag or fingerprint header")
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "max-age") {
		t.Errorf("Cache-Control = %q", cc)
	}

	// Conditional revalidation answers 304 from the fingerprint-derived
	// validator without a body.
	resp2, body2 := serveGet(t, ts, "/machine/commit?format=dot&r=4",
		http.Header{"If-None-Match": []string{etag}})
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation status = %d, want 304", resp2.StatusCode)
	}
	if body2 != "" {
		t.Errorf("304 carried a body (%d bytes)", len(body2))
	}
}

func TestServeErrors(t *testing.T) {
	ts := httptest.NewServer(newServeHandler(artifact.New()))
	defer ts.Close()
	tests := []struct {
		path string
		want int
	}{
		{"/machine/nonsense", http.StatusNotFound},
		{"/machine/commit?format=nonsense", http.StatusBadRequest},
		{"/machine/commit?r=notanumber", http.StatusBadRequest},
		{"/machine/commit?r=3", http.StatusBadRequest}, // below the model minimum
		{"/nonsense", http.StatusNotFound},
	}
	for _, tt := range tests {
		resp, _ := serveGet(t, ts, tt.path, nil)
		if resp.StatusCode != tt.want {
			t.Errorf("GET %s = %d, want %d", tt.path, resp.StatusCode, tt.want)
		}
	}
}

// TestServeConcurrentSingleGeneration is the serve-mode acceptance check:
// concurrent requests across formats and repeats of one model cost at most
// one generation per distinct model fingerprint, observed via cache stats.
func TestServeConcurrentSingleGeneration(t *testing.T) {
	p := artifact.New()
	ts := httptest.NewServer(newServeHandler(p))
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, format := range []string{"text", "dot", "xml", "go", "doc"} {
			wg.Add(1)
			go func(format string) {
				defer wg.Done()
				resp, body := serveGet(t, ts, "/machine/consensus?format="+format+"&r=5", nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d: %s", format, resp.StatusCode, body)
				}
			}(format)
		}
	}
	wg.Wait()

	st := p.Stats()
	if st.Machine.Generations != 1 {
		t.Errorf("generations = %d, want 1 for one distinct fingerprint", st.Machine.Generations)
	}

	// The stats endpoint reports the same counters.
	resp, body := serveGet(t, ts, "/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var got artifact.Stats
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if got.Machine.Generations != 1 {
		t.Errorf("reported generations = %d, want 1", got.Machine.Generations)
	}
}

func TestServeModelAndFormatListings(t *testing.T) {
	ts := httptest.NewServer(newServeHandler(artifact.New()))
	defer ts.Close()

	resp, body := serveGet(t, ts, "/models", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models status = %d", resp.StatusCode)
	}
	for _, want := range []string{"commit", "consensus", "termination", "replication factor"} {
		if !strings.Contains(body, want) {
			t.Errorf("/models missing %q", want)
		}
	}

	resp, body = serveGet(t, ts, "/formats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("formats status = %d", resp.StatusCode)
	}
	var formats []string
	if err := json.Unmarshal([]byte(body), &formats); err != nil {
		t.Fatalf("formats JSON: %v", err)
	}
	if len(formats) != 7 {
		t.Errorf("formats = %v, want 7 entries", formats)
	}
}

// TestServeEquivalentParamsShareOneGeneration: distinct requests that
// resolve to the same fingerprint (the default parameter given explicitly
// and implicitly) share one cache entry.
func TestServeEquivalentParamsShareOneGeneration(t *testing.T) {
	p := artifact.New()
	ts := httptest.NewServer(newServeHandler(p))
	defer ts.Close()
	for _, path := range []string{
		"/machine/termination",
		"/machine/termination?r=4",
		fmt.Sprintf("/machine/termination?r=%d", 4),
	} {
		if resp, body := serveGet(t, ts, path, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", path, resp.StatusCode, body)
		}
	}
	if st := p.Stats(); st.Machine.Generations != 1 {
		t.Errorf("generations = %d, want 1", st.Machine.Generations)
	}
}
