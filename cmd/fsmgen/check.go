package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"asagen"
)

// exitError carries a process exit code with an error, letting check
// distinguish a violating trace (1) from a broken invocation or
// malformed trace (2), grep-style.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }

func (e *exitError) Unwrap() error { return e.err }

// exitCode maps an error from run to the process exit code.
func exitCode(err error) int {
	var ec *exitError
	if errors.As(err, &ec) {
		return ec.code
	}
	return 1
}

// runCheck implements the check subcommand: it streams a trace through a
// model's generated machine and reports one verdict per line, exiting 0
// when the trace conforms, 1 when it violates, and 2 when the trace (or
// the invocation) is broken.
func runCheck(args []string, stdout io.Writer) error {
	helper := asagen.NewClient()
	modelNames := make([]string, 0, len(helper.Models()))
	for _, m := range helper.Models() {
		modelNames = append(modelNames, m.Name)
	}

	fs := flag.NewFlagSet("fsmgen check", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "commit", "registered model: "+strings.Join(modelNames, ", "))
		r         = fs.Int("r", 0, "model parameter (0 = model default)")
		tracePath = fs.String("trace", "-", "trace `file` to check (\"-\" = stdin)")
		format    = fs.String("format", "", "trace format: jsonl (default) or regex")
		tolerance = fs.Int("tolerance", 0, "rejected deliveries absorbed before a violation")
		keepGoing = fs.Bool("keep-going", false, "keep checking past the first violation")
		jsonOut   = fs.Bool("json", false, "print each verdict as canonical JSON (one object per line)")
		quiet     = fs.Bool("q", false, "suppress per-line verdicts; print only the summary")
		matches   []string
		specFiles []string
	)
	fs.Func("match", "regex transition `pattern` PATTERN or PATTERN=>TEMPLATE (repeatable; implies -format regex)",
		func(rule string) error {
			matches = append(matches, rule)
			return nil
		})
	fs.Func("spec", "JSON model spec `file` to register before resolving -model (repeatable)",
		func(path string) error {
			specFiles = append(specFiles, path)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return &exitError{code: 2, err: err}
	}

	client := asagen.NewClient(asagen.WithIsolatedRegistry())
	for _, path := range specFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			return &exitError{code: 2, err: err}
		}
		sp, err := asagen.ParseModelSpec(data)
		if err != nil {
			return &exitError{code: 2, err: fmt.Errorf("-spec %s: %w", path, err)}
		}
		if err := client.RegisterModel(sp); err != nil {
			return &exitError{code: 2, err: fmt.Errorf("-spec %s: %w", path, err)}
		}
	}

	in := io.Reader(os.Stdin)
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return &exitError{code: 2, err: err}
		}
		defer f.Close()
		in = f
	}

	opts := []asagen.CheckOption{
		asagen.WithTraceParam(*r),
		asagen.WithTolerance(*tolerance),
	}
	if *format != "" {
		opts = append(opts, asagen.WithTraceFormat(*format))
	}
	for _, rule := range matches {
		opts = append(opts, asagen.WithTracePattern(rule))
	}
	if *keepGoing {
		opts = append(opts, asagen.WithKeepGoing())
	}
	verdicts, err := client.Check(context.Background(), *modelName, in, opts...)
	if err != nil {
		return &exitError{code: 2, err: err}
	}

	var terminal asagen.Verdict
	for v := range verdicts {
		terminal = v
		if *jsonOut {
			// MarshalJSON directly: encoding/json would re-escape HTML
			// characters (`->` in actions), breaking byte-identity with
			// the SSE stream.
			line, err := v.MarshalJSON()
			if err != nil {
				return &exitError{code: 2, err: err}
			}
			fmt.Fprintf(stdout, "%s\n", line)
			continue
		}
		if !*quiet || v.Stats != nil {
			fmt.Fprintln(stdout, formatVerdict(v))
		}
	}

	switch terminal.Kind {
	case asagen.VerdictSummary:
		if terminal.Stats.Conforming() {
			return nil
		}
		return &exitError{code: 1, err: fmt.Errorf("trace violates model %s: first violation at line %d",
			*modelName, terminal.Stats.FirstViolation)}
	case asagen.VerdictMalformed:
		return &exitError{code: 2, err: fmt.Errorf("malformed trace: %s", terminal.Detail)}
	default:
		return &exitError{code: 2, err: fmt.Errorf("check aborted: %s", terminal.Detail)}
	}
}

// formatVerdict renders one verdict as a human-readable line.
func formatVerdict(v asagen.Verdict) string {
	switch v.Kind {
	case asagen.VerdictAccepted:
		line := fmt.Sprintf("line %d: accepted %s -> %s", v.Line, v.Event, v.State)
		if len(v.Actions) > 0 {
			line += " [" + strings.Join(v.Actions, " ") + "]"
		}
		return line
	case asagen.VerdictIgnored:
		return fmt.Sprintf("line %d: ignored %s (%s)", v.Line, v.Event, v.Detail)
	case asagen.VerdictSkipped:
		return fmt.Sprintf("line %d: skipped (%s)", v.Line, v.Detail)
	case asagen.VerdictFinished:
		return fmt.Sprintf("line %d: finished in state %s", v.Line, v.State)
	case asagen.VerdictViolation:
		return fmt.Sprintf("line %d: VIOLATION %s (%s)", v.Line, v.Event, v.Detail)
	case asagen.VerdictMalformed:
		return fmt.Sprintf("line %d: malformed trace (%s)", v.Line, v.Detail)
	case asagen.VerdictAborted:
		return fmt.Sprintf("aborted (%s)", v.Detail)
	case asagen.VerdictSummary:
		st := v.Stats
		if st.Conforming() {
			line := fmt.Sprintf("trace conforms: %d lines, %d events, %d accepted, %d ignored, %d skipped",
				st.Lines, st.Events, st.Accepted, st.Ignored, st.Skipped)
			if st.Finished {
				line += ", finished"
			}
			if st.FinalState != "" {
				line += " in state " + st.FinalState
			}
			return line
		}
		return fmt.Sprintf("trace violates: %d violations, first at line %d (%d lines, %d events, %d accepted, %d ignored)",
			st.Violations, st.FirstViolation, st.Lines, st.Events, st.Accepted, st.Ignored)
	default:
		return fmt.Sprintf("line %d: %s", v.Line, v.Kind)
	}
}
