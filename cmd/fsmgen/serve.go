package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"time"

	"asagen/internal/api"
	"asagen/internal/artifact"
	"asagen/internal/models"
	"asagen/internal/render"
)

// Serve mode: the versioned HTTP generation service (the paper's §4.2
// "generation whenever a new parameter value is encountered" policy,
// behind a network endpoint). The wire surface — /v1 routes including the
// writable model collection, error envelope, caching headers,
// request-scoped cancellation, and the deprecated legacy shims — lives in
// internal/api and is documented in the generated API.md.

// runServe parses serve-mode flags and blocks serving HTTP.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fsmgen serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8091", "listen address")
		jobs       = fs.Int("jobs", 0, "concurrent render jobs (0 = GOMAXPROCS)")
		cacheLimit = fs.Int("cache-limit", 128, "machine cache entry bound (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Every serve instance owns a clone of the built-in registry, so
	// POST /v1/models registrations are never shared between concurrent
	// servers (or with any other code in the process).
	reg := models.Default().Clone()
	p := artifact.New(artifact.WithJobs(*jobs), artifact.WithRegistry(reg))
	p.Cache().SetLimit(*cacheLimit)
	fmt.Fprintf(stdout, "fsmgen serve: listening on %s (%d models, %d formats)\n",
		*addr, len(reg.Names()), len(render.Formats()))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewHandler(p),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}
