package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"time"

	"asagen/internal/api"
	"asagen/internal/artifact"
	"asagen/internal/models"
	"asagen/internal/render"
	"asagen/internal/store"
)

// Serve mode: the versioned HTTP generation service (the paper's §4.2
// "generation whenever a new parameter value is encountered" policy,
// behind a network endpoint). The wire surface — /v1 routes including the
// writable model collection, error envelope, caching headers,
// request-scoped cancellation, and the deprecated legacy shims — lives in
// internal/api and is documented in the generated API.md.

// runServe parses serve-mode flags and blocks serving HTTP.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fsmgen serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8091", "listen address")
		jobs       = fs.Int("jobs", 0, "concurrent render jobs (0 = GOMAXPROCS)")
		cacheLimit = fs.Int("cache-limit", 128, "machine cache entry bound (0 = unbounded)")
		storeDir   = fs.String("store", "", "content-addressed artifact store directory (empty = in-memory only); a restarted server serves previously rendered artefacts from disk")
		storeLimit = fs.Int64("store-limit", 0, "artifact store size bound in bytes (0 = unbounded); least-recently-used artefacts are evicted beyond it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Every serve instance owns a clone of the built-in registry, so
	// POST /v1/models registrations are never shared between concurrent
	// servers (or with any other code in the process).
	reg := models.Default().Clone()
	opts := []artifact.Option{artifact.WithJobs(*jobs), artifact.WithRegistry(reg)}
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("open artifact store: %w", err)
		}
		defer s.Close()
		if *storeLimit > 0 {
			s.SetLimit(*storeLimit)
		}
		opts = append(opts, artifact.WithStore(s))
		fmt.Fprintf(stdout, "fsmgen serve: artifact store %s (%d artefacts warm)\n",
			s.Dir(), s.Len())
	}
	p := artifact.New(opts...)
	p.Cache().SetLimit(*cacheLimit)
	fmt.Fprintf(stdout, "fsmgen serve: listening on %s (%d models, %d formats)\n",
		*addr, len(reg.Names()), len(render.Formats()))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewHandler(p),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}
