package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"asagen/internal/artifact"
	"asagen/internal/models"
	"asagen/internal/render"
)

// Serve mode: an HTTP generation service backed by the artefact pipeline
// (the paper's §4.2 "generation whenever a new parameter value is
// encountered" policy, behind a network endpoint). Artefacts are
// immutable per fingerprint, so responses carry a content-hash ETag and
// conditional requests are answered 304 without rendering.
//
//	GET /machine/{model}?format=dot&r=7   one artefact
//	GET /models                           registered models + metadata
//	GET /formats                          registered formats
//	GET /stats                            pipeline cache statistics

// runServe parses serve-mode flags and blocks serving HTTP.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fsmgen serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8091", "listen address")
		jobs       = fs.Int("jobs", 0, "concurrent render jobs (0 = GOMAXPROCS)")
		cacheLimit = fs.Int("cache-limit", 128, "machine cache entry bound (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := artifact.New(artifact.WithJobs(*jobs))
	p.Cache().SetLimit(*cacheLimit)
	fmt.Fprintf(stdout, "fsmgen serve: listening on %s (%d models, %d formats)\n",
		*addr, len(models.Names()), len(render.Formats()))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServeHandler(p),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}

// newServeHandler routes the serve-mode endpoints onto the pipeline.
func newServeHandler(p *artifact.Pipeline) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /machine/{model}", func(w http.ResponseWriter, r *http.Request) {
		handleMachine(p, w, r)
	})
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		type modelInfo struct {
			Name         string `json:"name"`
			Description  string `json:"description"`
			ParamName    string `json:"param_name"`
			DefaultParam int    `json:"default_param"`
			HasEFSM      bool   `json:"has_efsm"`
			Vocabulary   string `json:"vocabulary,omitempty"`
		}
		var out []modelInfo
		for _, name := range models.Names() {
			e, err := models.Get(name)
			if err != nil {
				continue
			}
			out = append(out, modelInfo{
				Name:         e.Name,
				Description:  e.Description,
				ParamName:    e.ParamName,
				DefaultParam: e.DefaultParam,
				HasEFSM:      e.EFSM != nil,
				Vocabulary:   e.Vocabulary,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /formats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, render.Formats())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Stats())
	})
	return mux
}

// handleMachine renders one artefact. The ETag is the artefact content
// hash — stable per fingerprint — so caches revalidate with If-None-Match
// and matching requests cost neither generation nor rendering beyond the
// memo lookup.
func handleMachine(p *artifact.Pipeline, w http.ResponseWriter, r *http.Request) {
	req := artifact.Request{
		Model:  r.PathValue("model"),
		Format: "text",
	}
	if f := r.URL.Query().Get("format"); f != "" {
		req.Format = f
	}
	if rs := r.URL.Query().Get("r"); rs != "" {
		param, err := strconv.Atoi(rs)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad parameter %q: %v", rs, err), http.StatusBadRequest)
			return
		}
		req.Param = param
	}

	res := p.Render(req)
	if res.Err != nil {
		switch {
		case errors.Is(res.Err, artifact.ErrUnknownModel):
			http.Error(w, res.Err.Error(), http.StatusNotFound)
		case errors.Is(res.Err, artifact.ErrRender):
			// A renderer failure on a well-formed request is a server
			// defect, not a caller mistake.
			http.Error(w, res.Err.Error(), http.StatusInternalServerError)
		case errors.Is(res.Err, artifact.ErrUnknownFormat), errors.Is(res.Err, artifact.ErrNoEFSM):
			http.Error(w, res.Err.Error(), http.StatusBadRequest)
		default:
			// Model construction rejected the parameter value.
			http.Error(w, res.Err.Error(), http.StatusBadRequest)
		}
		return
	}

	etag := `"` + res.ContentHash() + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=3600")
	if !res.Fingerprint.IsZero() {
		w.Header().Set("X-Machine-Fingerprint", res.Fingerprint.String())
	}
	if ifNoneMatchHas(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", res.Artifact.MediaType)
	w.Header().Set("Content-Length", strconv.Itoa(len(res.Artifact.Data)))
	w.Write(res.Artifact.Data)
}

// ifNoneMatchHas reports whether the If-None-Match header value names the
// ETag (or is the wildcard).
func ifNoneMatchHas(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
