package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"asagen/internal/api"
	"asagen/internal/artifact"
	"asagen/internal/cluster"
	"asagen/internal/models"
	"asagen/internal/render"
	"asagen/internal/store"
)

// Serve mode: the versioned HTTP generation service (the paper's §4.2
// "generation whenever a new parameter value is encountered" policy,
// behind a network endpoint). The wire surface — /v1 routes including the
// writable model collection, error envelope, caching headers,
// request-scoped cancellation, and the deprecated legacy shims — lives in
// internal/api and is documented in the generated API.md.
//
// With -cluster the server additionally joins a peer ring (internal/
// cluster): artifact requests shard across nodes by consistent hashing
// on machine fingerprints, membership spreads by gossip, and rendered
// artifacts propagate to the next -replicas ring successors.

// runServe parses serve-mode flags and blocks serving HTTP.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fsmgen serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8091", "listen address")
		jobs       = fs.Int("jobs", 0, "concurrent render jobs (0 = GOMAXPROCS)")
		cacheLimit = fs.Int("cache-limit", 128, "machine cache entry bound (0 = unbounded)")
		storeDir   = fs.String("store", "", "content-addressed artifact store directory (empty = in-memory only); a restarted server serves previously rendered artefacts from disk")
		storeLimit = fs.Int64("store-limit", 0, "artifact store size bound in bytes (0 = unbounded); least-recently-used artefacts are evicted beyond it")
		clustered  = fs.Bool("cluster", false, "join a peer ring: shard artifact requests by fingerprint and replicate renders to ring successors")
		peers      = fs.String("peers", "", "comma-separated peer base URLs gossiped to at startup (cluster mode)")
		nodeID     = fs.String("node-id", "", "stable node name hashed onto the ring (default: the advertised URL)")
		advertise  = fs.String("advertise", "", "base URL peers reach this node at (default: http://localhost<addr>)")
		replicas   = fs.Int("replicas", 2, "successor-list length s: each artifact is pushed to its owner's next s ring successors (cluster mode)")
		seed       = fs.Int64("cluster-seed", 1, "seed for gossip target selection (cluster mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Every serve instance owns a clone of the built-in registry, so
	// POST /v1/models registrations are never shared between concurrent
	// servers (or with any other code in the process).
	reg := models.Default().Clone()
	opts := []artifact.Option{artifact.WithJobs(*jobs), artifact.WithRegistry(reg)}
	var st *store.Store
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("open artifact store: %w", err)
		}
		defer s.Close()
		if *storeLimit > 0 {
			s.SetLimit(*storeLimit)
		}
		st = s
		opts = append(opts, artifact.WithStore(s))
		fmt.Fprintf(stdout, "fsmgen serve: artifact store %s (%d artefacts warm)\n",
			s.Dir(), s.Len())
	}
	p := artifact.New(opts...)
	p.Cache().SetLimit(*cacheLimit)

	var handlerOpts []api.HandlerOption
	if *clustered {
		url := *advertise
		if url == "" {
			url = "http://localhost" + *addr
			if !strings.HasPrefix(*addr, ":") {
				url = "http://" + *addr
			}
		}
		id := *nodeID
		if id == "" {
			id = url
		}
		cfg := cluster.Config{
			ID:       id,
			URL:      url,
			Replicas: *replicas,
			Seed:     *seed,
			Clock:    cluster.NewRealClock(),
			Log:      cluster.NewBoundedLog(256),
			Peers:    splitList(*peers),
		}
		transport := cluster.NewHTTPTransport(nil)
		cfg.Transport = transport
		if st != nil {
			cfg.Ingest = func(b cluster.Blob) error {
				return st.Ingest(b.Key, b.Data, b.Sum, b.Media, b.Ext)
			}
		}
		node, err := cluster.New(cfg)
		if err != nil {
			return err
		}
		transport.Bind(node)
		node.Start()
		defer node.Stop()
		handlerOpts = append(handlerOpts, api.WithCluster(node))
		fmt.Fprintf(stdout, "fsmgen serve: cluster node %s at %s (replicas %d, peers %v)\n",
			id, url, *replicas, splitList(*peers))
	}

	fmt.Fprintf(stdout, "fsmgen serve: listening on %s (%d models, %d formats)\n",
		*addr, len(reg.Names()), len(render.Formats()))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewHandler(p, handlerOpts...),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
