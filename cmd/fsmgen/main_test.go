package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFormats(t *testing.T) {
	tests := []struct {
		name   string
		args   []string
		wantIn string
	}{
		{"text", []string{"-r", "4", "-format", "text"}, "state: F/0/F/0/F/F/F"},
		{"dot", []string{"-r", "4", "-format", "dot"}, "digraph"},
		{"xml", []string{"-r", "4", "-format", "xml"}, "<stateMachineDiagram"},
		{"go", []string{"-r", "4", "-format", "go", "-pkg", "demo"}, "package demo"},
		{"doc", []string{"-r", "4", "-format", "doc"}, "# State machine"},
		{"efsm", []string{"-r", "13", "-format", "efsm"}, "states: 9"},
		{"efsm-dot", []string{"-r", "7", "-format", "efsm-dot"}, "digraph"},
		{"redundant", []string{"-r", "4", "-variant", "redundant", "-format", "text"}, "state: "},
		{"no-merge", []string{"-r", "4", "-no-merge", "-format", "doc"}, "| States (merged) | 33 |"},
		{"no-comments", []string{"-r", "4", "-no-comments", "-format", "text"}, "Transitions:"},
		{"no-prune", []string{"-r", "4", "-no-prune", "-no-merge", "-format", "doc"}, "| States (raw) | 512 |"},
		{"workers", []string{"-r", "7", "-workers", "4", "-format", "text"}, "state machine: bft-commit"},
		{"default-param", []string{"-format", "text"}, "state machine: bft-commit"},
		{"model-consensus", []string{"-model", "consensus", "-r", "5", "-format", "text"}, "state machine: ct-consensus"},
		{"model-termination", []string{"-model", "termination", "-r", "3", "-format", "dot"}, "digraph"},
		{"model-termination-efsm", []string{"-model", "termination", "-r", "6", "-format", "efsm"}, "states:"},
		{"model-redundant-entry", []string{"-model", "commit-redundant", "-r", "4", "-format", "text"}, "state: "},
		{"model-consensus-go", []string{"-model", "consensus", "-r", "4", "-format", "go", "-pkg", "cons"}, "package cons"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tt.args, &sb); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			if !strings.Contains(sb.String(), tt.wantIn) {
				t.Errorf("output missing %q", tt.wantIn)
			}
		})
	}
}

// TestUnknownNameErrorsListRegistries: the unknown-format and
// unknown-model failures name the registered sets, matching asasim's
// fail-fast style.
func TestUnknownNameErrorsListRegistries(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-format", "nonsense"}, &sb)
	if err == nil {
		t.Fatal("unknown format accepted")
	}
	for _, want := range []string{"text", "dot", "xml", "go", "doc", "efsm", "efsm-dot"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-format error %q missing %q", err, want)
		}
	}
	err = run([]string{"-model", "nonsense"}, &sb)
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, want := range []string{"chord", "commit", "commit-redundant", "consensus", "storage", "termination"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-model error %q missing %q", err, want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-r", "3"},                                      // replication too small
		{"-format", "nonsense"},                          // unknown format
		{"-variant", "nonsense"},                         // unknown variant
		{"-r", "3", "-format", "efsm"},                   // efsm path validates r too
		{"-bogus-flag"},                                  // flag parse error
		{"-model", "nonsense"},                           // unregistered model
		{"-model", "consensus", "-r", "2"},               // below the model's minimum
		{"-model", "consensus", "-variant", "redundant"}, // variant is commit-only
	}
	for _, args := range tests {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.txt")
	var sb strings.Builder
	if err := run([]string{"-r", "4", "-format", "text", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "state machine: bft-commit") {
		t.Error("file missing artefact header")
	}
	if sb.Len() != 0 {
		t.Error("wrote to stdout despite -o")
	}
}

func TestGeneratedGoMatchesCheckedIn(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-r", "4", "-format", "go", "-pkg", "commitfsm4"}, &sb); err != nil {
		t.Fatal(err)
	}
	checked, err := os.ReadFile("../../internal/commit/commitfsm4/machine.go")
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(checked) {
		t.Error("fsmgen output differs from checked-in commitfsm4; regenerate it")
	}
}

// TestRunAllMatchesPerFormatInvocations: -all writes every (model ×
// format) artefact, and the bytes are bit-identical to the corresponding
// single-format invocation.
func TestRunAllMatchesPerFormatInvocations(t *testing.T) {
	dir := t.TempDir()
	var manifest strings.Builder
	if err := run([]string{"-all", "-o", dir}, &manifest); err != nil {
		t.Fatalf("run -all: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 6 models × 5 machine formats + 6 EFSM-capable models × 2 EFSM formats.
	if len(entries) != 42 {
		t.Fatalf("-all wrote %d files, want 42", len(entries))
	}
	if got := strings.Count(manifest.String(), "wrote "); got != 42 {
		t.Errorf("manifest lists %d files, want 42", got)
	}

	perFormat := func(args ...string) string {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return sb.String()
	}
	comparisons := []struct {
		prefix string
		args   []string
	}{
		{"commit-r4.text.", []string{"-model", "commit", "-format", "text"}},
		{"commit-r4.go.", []string{"-model", "commit", "-format", "go"}},
		{"consensus-r5.dot.", []string{"-model", "consensus", "-format", "dot"}},
		{"termination-r4.xml.", []string{"-model", "termination", "-format", "xml"}},
		{"commit-redundant-r4.doc.", []string{"-model", "commit-redundant", "-format", "doc"}},
		{"commit-r4.efsm.", []string{"-model", "commit", "-format", "efsm"}},
		{"chord-r4.text.", []string{"-model", "chord", "-format", "text"}},
		{"chord-r4.efsm-dot.", []string{"-model", "chord", "-format", "efsm-dot"}},
		{"storage-r4.go.", []string{"-model", "storage", "-format", "go"}},
		{"storage-r4.efsm.", []string{"-model", "storage", "-format", "efsm"}},
	}
	for _, c := range comparisons {
		var path string
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), c.prefix) {
				path = filepath.Join(dir, e.Name())
				break
			}
		}
		if path == "" {
			t.Errorf("no -all artefact with prefix %q", c.prefix)
			continue
		}
		batch, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(batch) != perFormat(c.args...) {
			t.Errorf("%s differs from per-format invocation %v", path, c.args)
		}
	}
}

// leaseSpecJSON is a minimal user-defined spec for the -spec flag tests:
// collect unanimous grants, lead, then finish on expiry.
const leaseSpecJSON = `{
  "name": "lease",
  "description": "unanimous-grant leader lease",
  "param_name": "peer count",
  "default_param": 3,
  "components": [
    {"name": "leader", "kind": "bool"},
    {"name": "grants", "kind": "int", "max": {"param": true}}
  ],
  "messages": ["GRANT", "EXPIRE"],
  "rules": [
    {"message": "GRANT",
     "when": [{"component": "leader", "op": "==", "value": {"offset": 0}},
              {"component": "grants", "op": "==", "value": {"param": true, "offset": -1}}],
     "set": [{"component": "grants", "add": 1},
             {"component": "leader", "set": {"offset": 1}}],
     "actions": ["->lead"]},
    {"message": "GRANT",
     "when": [{"component": "leader", "op": "==", "value": {"offset": 0}}],
     "set": [{"component": "grants", "add": 1}]},
    {"message": "EXPIRE",
     "when": [{"component": "leader", "op": "==", "value": {"offset": 1}}],
     "actions": ["->release"],
     "finish": true}
  ]
}`

// TestRunSpecFlag: -spec registers a user-defined model for the
// invocation; the lone spec becomes the default -model, renders in any
// machine format, joins -all's cross product, and never leaks into other
// invocations.
func TestRunSpecFlag(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "lease.json")
	if err := os.WriteFile(specPath, []byte(leaseSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := run([]string{"-spec", specPath, "-format", "text"}, &sb); err != nil {
		t.Fatalf("run -spec: %v", err)
	}
	if !strings.Contains(sb.String(), "state machine: lease") {
		t.Errorf("spec model not rendered by default:\n%.200s", sb.String())
	}

	// -model still wins when set explicitly.
	sb.Reset()
	if err := run([]string{"-spec", specPath, "-model", "commit", "-format", "text"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "state machine: bft-commit") {
		t.Errorf("-model override ignored:\n%.200s", sb.String())
	}

	// -all includes the registered spec: 42 built-in artefacts + 5
	// machine formats for the EFSM-less lease model.
	outDir := t.TempDir()
	sb.Reset()
	if err := run([]string{"-spec", specPath, "-all", "-o", outDir}, &sb); err != nil {
		t.Fatalf("run -spec -all: %v", err)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 47 {
		t.Fatalf("-spec -all wrote %d files, want 47", len(entries))
	}
	leaseArtifacts := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "lease-r3.") {
			leaseArtifacts++
		}
	}
	if leaseArtifacts != 5 {
		t.Errorf("lease artefacts = %d, want 5 machine formats", leaseArtifacts)
	}

	// The registration is invocation-scoped: without -spec the model is
	// unknown again.
	if err := run([]string{"-model", "lease", "-format", "text"}, &sb); err == nil {
		t.Error("spec registration leaked across invocations")
	}

	// A broken spec fails fast with the diagnostics.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"name":"bad","components":[],"messages":[],"rules":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", badPath, "-format", "text"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "components") {
		t.Errorf("invalid spec error = %v, want component diagnostic", err)
	}
}
