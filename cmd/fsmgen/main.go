// Command fsmgen executes a registered abstract model and renders the
// generated state machine in any registered artefact format:
//
//	text      textual state catalogue (Fig. 14)
//	dot       Graphviz state-transition diagram (Fig. 15)
//	xml       XML diagram interchange document (Fig. 15)
//	go        Go source implementation (Fig. 16)
//	doc       markdown documentation
//	efsm      textual EFSM catalogue (§5.3)
//	efsm-dot  Graphviz EFSM diagram
//
// The -model flag selects the scenario from the model registry (commit,
// commit-redundant, consensus, termination); -r is the model parameter
// (replication factor, process count, or fan-out bound).
//
// With -all the command renders the full registry cross product — every
// registered model in every registered format — concurrently through the
// artefact pipeline into an output directory, under content-addressed
// filenames. As the first argument, "serve" starts an HTTP generation
// service backed by the same pipeline.
//
// Examples:
//
//	fsmgen -r 4 -format text
//	fsmgen -model consensus -r 7 -format dot
//	fsmgen -r 7 -format go -pkg commitfsm7 -o machine_gen.go
//	fsmgen -model termination -r 13 -format efsm
//	fsmgen -all -o artifacts
//	fsmgen serve -addr :8080
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"asagen/internal/artifact"
	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsmgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], stdout)
	}

	fs := flag.NewFlagSet("fsmgen", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "commit", "registered model: "+strings.Join(models.Names(), ", "))
		r         = fs.Int("r", 0, "model parameter (0 = model default)")
		format    = fs.String("format", "text", "artefact format: "+strings.Join(render.Formats(), ", "))
		pkg       = fs.String("pkg", "", "package name for -format go (default: derived from the machine)")
		out       = fs.String("o", "", "output file, or directory for -all (stdout / \"artifacts\" when empty)")
		variant   = fs.String("variant", "strict", "commit Fig. 9 reading: strict or redundant")
		stats     = fs.Bool("stats", false, "print generation statistics to stderr")
		workers   = fs.Int("workers", 1, "parallel frontier-expansion workers")
		jobs      = fs.Int("jobs", 0, "concurrent render jobs for -all (0 = GOMAXPROCS)")
		all       = fs.Bool("all", false, "render every registered model in every registered format")
		noMerge   = fs.Bool("no-merge", false, "skip the equivalent-state merging step")
		noPrune   = fs.Bool("no-prune", false, "legacy full enumeration instead of reachability-first exploration")
		noComment = fs.Bool("no-comments", false, "omit generated state commentary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var genOpts []core.Option
	if *noMerge {
		genOpts = append(genOpts, core.WithoutMerging())
	}
	if *noPrune {
		genOpts = append(genOpts, core.WithoutPruning())
	}
	if *noComment {
		genOpts = append(genOpts, core.WithoutDescriptions())
	}
	if *workers > 1 {
		genOpts = append(genOpts, core.WithWorkers(*workers))
	}

	if *all {
		return runAll(*out, *jobs, genOpts, stdout)
	}

	// -variant is the historical way to select the redundant commit
	// reading; it maps onto the commit-redundant registry entry.
	switch *variant {
	case "strict":
		// Default reading of every entry.
	case "redundant":
		if *modelName != "commit" && *modelName != "commit-redundant" {
			return fmt.Errorf("-variant redundant applies only to the commit model, not %q", *modelName)
		}
		*modelName = "commit-redundant"
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	entry, err := models.Get(*modelName)
	if err != nil {
		return err
	}
	param := *r
	if param <= 0 {
		param = entry.DefaultParam
	}
	if !render.Known(*format) {
		return fmt.Errorf("unknown format %q (known: %v)", *format, render.Formats())
	}

	var art render.Artifact
	if render.IsEFSMFormat(*format) {
		if entry.EFSM == nil {
			return fmt.Errorf("model %q declares no EFSM abstraction", entry.Name)
		}
		efsm, err := entry.EFSM(param)
		if err != nil {
			return err
		}
		renderer, err := render.NewEFSM(*format)
		if err != nil {
			return err
		}
		if art, err = renderer.RenderEFSM(efsm); err != nil {
			return err
		}
	} else {
		model, err := entry.Build(param)
		if err != nil {
			return err
		}
		machine, err := core.Generate(model, genOpts...)
		if err != nil {
			return err
		}
		if *stats {
			line := fmt.Sprintf("model=%s %s=%d", machine.ModelName, entry.ParamName, model.Parameter())
			if cm, ok := model.(*commit.Model); ok {
				line += fmt.Sprintf(" f=%d", cm.FaultTolerance())
			}
			fmt.Fprintf(os.Stderr, "%s initial=%d reachable=%d final=%d transitions=%d fingerprint=%s\n",
				line, machine.Stats.InitialStates, machine.Stats.ReachableStates,
				machine.Stats.FinalStates, machine.TransitionCount(),
				core.FingerprintModel(model, genOpts...).Short())
		}
		renderer, err := render.New(*format)
		if err != nil {
			return err
		}
		if g, ok := renderer.(*render.GoSourceRenderer); ok {
			g.PackageName = *pkg
		}
		if art, err = renderer.Render(machine); err != nil {
			return err
		}
	}

	if *out == "" {
		_, err := stdout.Write(art.Data)
		return err
	}
	return os.WriteFile(*out, art.Data, 0o644)
}

// runAll renders the full registry cross product through the artefact
// pipeline into outDir, one content-addressed file per artefact, and
// prints a manifest line per file plus a cache summary.
func runAll(outDir string, jobs int, genOpts []core.Option, stdout io.Writer) error {
	if outDir == "" {
		outDir = "artifacts"
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	p := artifact.New(
		artifact.WithJobs(jobs),
		artifact.WithGenerateOptions(genOpts...),
	)
	reqs := artifact.AllRequests()
	failures := 0
	for _, res := range p.RenderAll(reqs) {
		if res.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fsmgen: %s/%s r=%d: %v\n",
				res.Request.Model, res.Request.Format, res.Request.Param, res.Err)
			continue
		}
		path := filepath.Join(outDir, res.FileName())
		if err := os.WriteFile(path, res.Artifact.Data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", path, len(res.Artifact.Data))
	}
	st := p.Stats()
	fmt.Fprintf(stdout, "%d artifacts, %d generations, %d render hits, %d render misses\n",
		len(reqs)-failures, st.Machine.Generations, st.RenderHits, st.RenderMisses)
	if failures > 0 {
		return fmt.Errorf("%d artifacts failed to render", failures)
	}
	return nil
}
