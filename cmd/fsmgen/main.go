// Command fsmgen executes the commit-protocol abstract model and renders
// the generated state machine as one of the paper's artefact types:
//
//	text      textual state catalogue (Fig. 14)
//	dot       Graphviz state-transition diagram (Fig. 15)
//	xml       XML diagram interchange document (Fig. 15)
//	go        Go source implementation (Fig. 16)
//	doc       markdown documentation
//	efsm      textual EFSM catalogue (§5.3)
//	efsm-dot  Graphviz EFSM diagram
//
// Examples:
//
//	fsmgen -r 4 -format text
//	fsmgen -r 7 -format go -pkg commitfsm7 -o machine_gen.go
//	fsmgen -r 13 -format efsm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsmgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fsmgen", flag.ContinueOnError)
	var (
		r         = fs.Int("r", 4, "replication factor (minimum 4)")
		format    = fs.String("format", "text", "artefact: text, dot, xml, go, doc, efsm, efsm-dot")
		pkg       = fs.String("pkg", "commitfsm", "package name for -format go")
		out       = fs.String("o", "", "output file (stdout when empty)")
		variant   = fs.String("variant", "strict", "Fig. 9 reading: strict or redundant")
		stats     = fs.Bool("stats", false, "print generation statistics to stderr")
		noMerge   = fs.Bool("no-merge", false, "skip the equivalent-state merging step")
		noPrune   = fs.Bool("no-prune", false, "skip the unreachable-state pruning step")
		noComment = fs.Bool("no-comments", false, "omit generated state commentary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []commit.Option
	switch *variant {
	case "strict":
		// Default.
	case "redundant":
		opts = append(opts, commit.WithVariant(commit.RedundantVariant()))
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	var artefact string
	switch *format {
	case "efsm", "efsm-dot":
		efsm, err := commit.GenerateEFSM(*r, opts...)
		if err != nil {
			return err
		}
		if *format == "efsm" {
			artefact = render.RenderEFSMText(efsm)
		} else {
			artefact = render.RenderEFSMDot(efsm)
		}
	default:
		model, err := commit.NewModel(*r, opts...)
		if err != nil {
			return err
		}
		var genOpts []core.Option
		if *noMerge {
			genOpts = append(genOpts, core.WithoutMerging())
		}
		if *noPrune {
			genOpts = append(genOpts, core.WithoutPruning())
		}
		if *noComment {
			genOpts = append(genOpts, core.WithoutDescriptions())
		}
		machine, err := core.Generate(model, genOpts...)
		if err != nil {
			return err
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "model=%s r=%d f=%d initial=%d reachable=%d final=%d transitions=%d\n",
				machine.ModelName, *r, model.FaultTolerance(),
				machine.Stats.InitialStates, machine.Stats.ReachableStates,
				machine.Stats.FinalStates, machine.TransitionCount())
		}
		switch *format {
		case "text":
			artefact = render.NewTextRenderer().Render(machine)
		case "dot":
			artefact = render.NewDotRenderer().Render(machine)
		case "xml":
			artefact, err = render.NewXMLRenderer().Render(machine)
			if err != nil {
				return err
			}
		case "go":
			artefact, err = render.NewGoSourceRenderer(*pkg).Render(machine)
			if err != nil {
				return err
			}
		case "doc":
			artefact = render.NewDocRenderer().Render(machine)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}

	if *out == "" {
		_, err := io.WriteString(stdout, artefact)
		return err
	}
	return os.WriteFile(*out, []byte(artefact), 0o644)
}
