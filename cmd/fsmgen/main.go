// Command fsmgen executes a registered abstract model and renders the
// generated state machine in any registered artefact format:
//
//	text      textual state catalogue (Fig. 14)
//	dot       Graphviz state-transition diagram (Fig. 15)
//	xml       XML diagram interchange document (Fig. 15)
//	go        Go source implementation (Fig. 16)
//	doc       markdown documentation
//	efsm      textual EFSM catalogue (§5.3)
//	efsm-dot  Graphviz EFSM diagram
//
// The command is a thin shell over the public asagen SDK: model and
// format names resolve through the client's registries, and all
// generation and rendering is memoised by the client. The -model flag
// selects the scenario (commit, commit-redundant, consensus, termination,
// chord, storage); -r is the model parameter (replication factor, process
// count, fan-out bound, or successor-list length).
//
// With -spec the command registers user-defined models from declarative
// JSON spec files (see the "Authoring your own model" section of
// README.md) before resolving -model, so a scenario never has to live in
// this repository to be generated; the flag repeats for multiple specs,
// and -all includes the registered specs in its cross product.
//
// With -all the command renders the full registry cross product — every
// registered model in every registered format — concurrently into an
// output directory, under content-addressed filenames. As the first
// argument, "serve" starts the versioned HTTP generation service (see
// API.md), whose /v1/models collection accepts the same JSON specs over
// POST, and "check" streams a recorded or live trace through a model's
// generated machine, reporting one conformance verdict per line; it
// exits 0 when the trace conforms, 1 when it violates, 2 when the trace
// is malformed or the invocation is broken.
//
// Examples:
//
//	fsmgen -r 4 -format text
//	fsmgen -model consensus -r 7 -format dot
//	fsmgen -r 7 -format go -pkg commitfsm7 -o machine_gen.go
//	fsmgen -model termination -r 13 -format efsm
//	fsmgen -spec lease.json -format text
//	fsmgen -spec lease.json -all -o artifacts
//	fsmgen -all -o artifacts
//	fsmgen serve -addr :8080
//	fsmgen check -model commit -r 4 -trace round.jsonl
//	tail -f system.log | fsmgen check -format regex -q
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"asagen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsmgen:", err)
		os.Exit(exitCode(err))
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "check" {
		return runCheck(args[1:], stdout)
	}

	// Registry listings for flag help come from a plain client; the
	// working client below is configured from the parsed flags.
	helper := asagen.NewClient()
	modelNames := make([]string, 0, len(helper.Models()))
	for _, m := range helper.Models() {
		modelNames = append(modelNames, m.Name)
	}

	fs := flag.NewFlagSet("fsmgen", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "commit", "registered model: "+strings.Join(modelNames, ", "))
		r         = fs.Int("r", 0, "model parameter (0 = model default)")
		format    = fs.String("format", "text", "artefact format: "+strings.Join(helper.Formats(), ", "))
		pkg       = fs.String("pkg", "", "package name for -format go (default: derived from the machine)")
		out       = fs.String("o", "", "output file, or directory for -all (stdout / \"artifacts\" when empty)")
		variant   = fs.String("variant", "strict", "commit Fig. 9 reading: strict or redundant")
		stats     = fs.Bool("stats", false, "print generation statistics to stderr")
		workers   = fs.Int("workers", 1, "parallel frontier-expansion workers")
		jobs      = fs.Int("jobs", 0, "concurrent render jobs for -all (0 = GOMAXPROCS)")
		all       = fs.Bool("all", false, "render every registered model in every registered format")
		noMerge   = fs.Bool("no-merge", false, "skip the equivalent-state merging step")
		noPrune   = fs.Bool("no-prune", false, "legacy full enumeration instead of reachability-first exploration")
		noComment = fs.Bool("no-comments", false, "omit generated state commentary")
		specFiles []string
	)
	fs.Func("spec", "JSON model spec `file` to register before resolving -model (repeatable)",
		func(path string) error {
			specFiles = append(specFiles, path)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}

	var genOpts []asagen.GenerateOption
	if *noMerge {
		genOpts = append(genOpts, asagen.WithoutMerging())
	}
	if *noPrune {
		genOpts = append(genOpts, asagen.WithoutPruning())
	}
	if *noComment {
		genOpts = append(genOpts, asagen.WithoutDescriptions())
	}
	if *workers > 1 {
		genOpts = append(genOpts, asagen.WithWorkers(*workers))
	}
	// The command's registrations live and die with this invocation: the
	// client clones the registry so -spec never mutates process-global
	// state (which keeps the test binary hermetic, too).
	client := asagen.NewClient(
		asagen.WithJobs(*jobs),
		asagen.WithGenerateOptions(genOpts...),
		asagen.WithIsolatedRegistry(),
	)
	ctx := context.Background()

	var specNames []string
	for _, path := range specFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sp, err := asagen.ParseModelSpec(data)
		if err != nil {
			return fmt.Errorf("-spec %s: %w", path, err)
		}
		if err := client.RegisterModel(sp); err != nil {
			return fmt.Errorf("-spec %s: %w", path, err)
		}
		specNames = append(specNames, sp.Name())
	}
	// A lone spec names the model to render unless -model says otherwise.
	modelFlagSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "model" {
			modelFlagSet = true
		}
	})
	if len(specNames) == 1 && !modelFlagSet {
		*modelName = specNames[0]
	}

	if *all {
		return runAll(ctx, client, *out, stdout)
	}

	// -variant is the historical way to select the redundant commit
	// reading; it maps onto the commit-redundant registry entry.
	switch *variant {
	case "strict":
		// Default reading of every entry.
	case "redundant":
		if *modelName != "commit" && *modelName != "commit-redundant" {
			return fmt.Errorf("-variant redundant applies only to the commit model, not %q", *modelName)
		}
		*modelName = "commit-redundant"
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	if !slices.Contains(client.Formats(), *format) {
		return fmt.Errorf("unknown format %q (known: %v)", *format, client.Formats())
	}

	var res asagen.Result
	if *pkg != "" || *stats {
		// Paths that need the machine itself: a custom Go package clause,
		// or the generation statistics line.
		info, err := client.Model(*modelName)
		if err != nil {
			return err
		}
		machine, err := client.Generate(ctx, *modelName, asagen.WithParam(*r))
		if err != nil {
			return err
		}
		if *stats {
			line := fmt.Sprintf("model=%s %s=%d", machine.ModelName(), info.ParamName, machine.Parameter())
			if f, ok := machine.FaultTolerance(); ok {
				line += fmt.Sprintf(" f=%d", f)
			}
			st := machine.Stats()
			fmt.Fprintf(os.Stderr, "%s initial=%d reachable=%d final=%d transitions=%d fingerprint=%s\n",
				line, st.InitialStates, st.ReachableStates, st.FinalStates, st.Transitions,
				machine.Fingerprint()[:12])
		}
		if client.IsEFSMFormat(*format) {
			// -stats was requested alongside an EFSM format: the machine
			// statistics are printed above, the artefact renders below.
			res, err = client.Render(ctx, asagen.Request{Model: *modelName, Param: *r, Format: *format})
		} else {
			res, err = machine.Render(*format, asagen.WithGoPackage(*pkg))
		}
		if err != nil {
			return err
		}
	} else {
		var err error
		res, err = client.Render(ctx, asagen.Request{Model: *modelName, Param: *r, Format: *format})
		if err != nil {
			return err
		}
	}

	if *out == "" {
		_, err := stdout.Write(res.Data)
		return err
	}
	return os.WriteFile(*out, res.Data, 0o644)
}

// runAll renders the full registry cross product through the client into
// outDir, one content-addressed file per artefact, and prints a manifest
// line per file plus a cache summary.
func runAll(ctx context.Context, client *asagen.Client, outDir string, stdout io.Writer) error {
	if outDir == "" {
		outDir = "artifacts"
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	reqs := client.AllRequests()
	failures := 0
	for _, res := range client.RenderAll(ctx, reqs) {
		if res.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fsmgen: %s/%s r=%d: %v\n",
				res.Model, res.Format, res.Param, res.Err)
			continue
		}
		path := filepath.Join(outDir, res.FileName())
		if err := os.WriteFile(path, res.Data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", path, len(res.Data))
	}
	st := client.Stats()
	fmt.Fprintf(stdout, "%d artifacts, %d generations, %d render hits, %d render misses\n",
		len(reqs)-failures, st.Generations, st.RenderHits, st.RenderMisses)
	if failures > 0 {
		return fmt.Errorf("%d artifacts failed to render", failures)
	}
	return nil
}
