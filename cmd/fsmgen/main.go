// Command fsmgen executes a registered abstract model and renders the
// generated state machine as one of the paper's artefact types:
//
//	text      textual state catalogue (Fig. 14)
//	dot       Graphviz state-transition diagram (Fig. 15)
//	xml       XML diagram interchange document (Fig. 15)
//	go        Go source implementation (Fig. 16)
//	doc       markdown documentation
//	efsm      textual EFSM catalogue (§5.3)
//	efsm-dot  Graphviz EFSM diagram
//
// The -model flag selects the scenario from the model registry (commit,
// commit-redundant, consensus, termination); -r is the model parameter
// (replication factor, process count, or fan-out bound).
//
// Examples:
//
//	fsmgen -r 4 -format text
//	fsmgen -model consensus -r 7 -format dot
//	fsmgen -r 7 -format go -pkg commitfsm7 -o machine_gen.go
//	fsmgen -model termination -r 13 -format efsm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsmgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fsmgen", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "commit", "registered model: "+strings.Join(models.Names(), ", "))
		r         = fs.Int("r", 0, "model parameter (0 = model default)")
		format    = fs.String("format", "text", "artefact: text, dot, xml, go, doc, efsm, efsm-dot")
		pkg       = fs.String("pkg", "commitfsm", "package name for -format go")
		out       = fs.String("o", "", "output file (stdout when empty)")
		variant   = fs.String("variant", "strict", "commit Fig. 9 reading: strict or redundant")
		stats     = fs.Bool("stats", false, "print generation statistics to stderr")
		workers   = fs.Int("workers", 1, "parallel frontier-expansion workers")
		noMerge   = fs.Bool("no-merge", false, "skip the equivalent-state merging step")
		noPrune   = fs.Bool("no-prune", false, "legacy full enumeration instead of reachability-first exploration")
		noComment = fs.Bool("no-comments", false, "omit generated state commentary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// -variant is the historical way to select the redundant commit
	// reading; it maps onto the commit-redundant registry entry.
	switch *variant {
	case "strict":
		// Default reading of every entry.
	case "redundant":
		if *modelName != "commit" && *modelName != "commit-redundant" {
			return fmt.Errorf("-variant redundant applies only to the commit model, not %q", *modelName)
		}
		*modelName = "commit-redundant"
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	entry, err := models.Get(*modelName)
	if err != nil {
		return err
	}
	param := *r
	if param <= 0 {
		param = entry.DefaultParam
	}

	var artefact string
	switch *format {
	case "efsm", "efsm-dot":
		if entry.EFSM == nil {
			return fmt.Errorf("model %q declares no EFSM abstraction", entry.Name)
		}
		efsm, err := entry.EFSM(param)
		if err != nil {
			return err
		}
		if *format == "efsm" {
			artefact = render.RenderEFSMText(efsm)
		} else {
			artefact = render.RenderEFSMDot(efsm)
		}
	default:
		model, err := entry.Build(param)
		if err != nil {
			return err
		}
		var genOpts []core.Option
		if *noMerge {
			genOpts = append(genOpts, core.WithoutMerging())
		}
		if *noPrune {
			genOpts = append(genOpts, core.WithoutPruning())
		}
		if *noComment {
			genOpts = append(genOpts, core.WithoutDescriptions())
		}
		if *workers > 1 {
			genOpts = append(genOpts, core.WithWorkers(*workers))
		}
		machine, err := core.Generate(model, genOpts...)
		if err != nil {
			return err
		}
		if *stats {
			line := fmt.Sprintf("model=%s %s=%d", machine.ModelName, entry.ParamName, model.Parameter())
			if cm, ok := model.(*commit.Model); ok {
				line += fmt.Sprintf(" f=%d", cm.FaultTolerance())
			}
			fmt.Fprintf(os.Stderr, "%s initial=%d reachable=%d final=%d transitions=%d\n",
				line, machine.Stats.InitialStates, machine.Stats.ReachableStates,
				machine.Stats.FinalStates, machine.TransitionCount())
		}
		switch *format {
		case "text":
			artefact = render.NewTextRenderer().Render(machine)
		case "dot":
			artefact = render.NewDotRenderer().Render(machine)
		case "xml":
			artefact, err = render.NewXMLRenderer().Render(machine)
			if err != nil {
				return err
			}
		case "go":
			artefact, err = render.NewGoSourceRenderer(*pkg).Render(machine)
			if err != nil {
				return err
			}
		case "doc":
			artefact = render.NewDocRenderer().Render(machine)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}

	if *out == "" {
		_, err := io.WriteString(stdout, artefact)
		return err
	}
	return os.WriteFile(*out, []byte(artefact), 0o644)
}
