package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkRun invokes the check subcommand and returns its stdout and exit
// code (0 for a nil error).
func checkRun(t *testing.T, args ...string) (string, int, error) {
	t.Helper()
	var sb strings.Builder
	err := run(append([]string{"check"}, args...), &sb)
	if err == nil {
		return sb.String(), 0, nil
	}
	return sb.String(), exitCode(err), err
}

func TestCheckConformingTraceExitsZero(t *testing.T) {
	out, code, err := checkRun(t,
		"-model", "commit", "-r", "4", "-trace", "../../examples/traces/commit-conforming.jsonl")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(out, "line 2: accepted UPDATE") {
		t.Errorf("output missing accepted verdict:\n%s", out)
	}
	if !strings.Contains(out, "finished in state") || !strings.Contains(out, "trace conforms: 6 lines, 6 events") {
		t.Errorf("output missing finish/summary:\n%s", out)
	}
}

func TestCheckViolatingTraceExitsOne(t *testing.T) {
	out, code, err := checkRun(t,
		"-model", "commit", "-r", "4", "-trace", "../../examples/traces/commit-violating.jsonl")
	if err == nil {
		t.Fatal("violating trace returned nil error")
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (err %v)", code, err)
	}
	if !strings.Contains(err.Error(), "first violation at line 3") {
		t.Errorf("error = %v", err)
	}
	if !strings.Contains(out, "line 3: VIOLATION ELECT") || !strings.Contains(out, "trace violates:") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCheckMalformedTraceExitsTwo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.jsonl")
	if err := os.WriteFile(path, []byte("\"UPDATE\"\n{nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code, err := checkRun(t, "-model", "commit", "-r", "4", "-trace", path)
	if err == nil {
		t.Fatal("malformed trace returned nil error")
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (err %v)", code, err)
	}
	if !strings.Contains(err.Error(), "malformed trace") {
		t.Errorf("error = %v", err)
	}
	if !strings.Contains(out, "line 2: malformed trace") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCheckInvocationErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "nonsense", "-trace", "../../examples/traces/commit-conforming.jsonl"},
		{"-trace", "/does/not/exist.jsonl"},
		{"-format", "xml", "-trace", "../../examples/traces/commit-conforming.jsonl"},
		{"-match", "([broken", "-trace", "../../examples/traces/commit-conforming.jsonl"},
	} {
		_, code, err := checkRun(t, args...)
		if err == nil || code != 2 {
			t.Errorf("check %v: code=%d err=%v, want exit 2", args, code, err)
		}
	}
}

func TestCheckRegexTrace(t *testing.T) {
	out, code, err := checkRun(t, "-model", "commit", "-r", "4",
		"-format", "regex", "-trace", "../../examples/traces/commit-conforming.log")
	if err != nil {
		t.Fatalf("run: %v (out %s)", err, out)
	}
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(out, "line 2: skipped") {
		t.Errorf("comment line not reported skipped:\n%s", out)
	}
	if !strings.Contains(out, "1 skipped") || !strings.Contains(out, "finished") {
		t.Errorf("summary:\n%s", out)
	}
}

func TestCheckJSONOutputIsCanonical(t *testing.T) {
	out, code, err := checkRun(t, "-model", "commit", "-r", "4", "-json",
		"-trace", "../../examples/traces/commit-conforming.jsonl")
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d JSON lines, want 8:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], `{"line":1,"event":"FREE","kind":"accepted","state":`) {
		t.Errorf("first verdict line = %s", lines[0])
	}
	// Every line is valid JSON and re-marshals to itself (canonical form).
	for _, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
	if !strings.Contains(lines[7], `"kind":"summary"`) || !strings.Contains(lines[7], `"finished":true`) {
		t.Errorf("summary line = %s", lines[7])
	}
}

func TestCheckQuietPrintsOnlySummary(t *testing.T) {
	out, code, err := checkRun(t, "-model", "commit", "-r", "4", "-q",
		"-trace", "../../examples/traces/commit-conforming.jsonl")
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 1 || !strings.HasPrefix(lines[0], "trace conforms:") {
		t.Errorf("quiet output = %q", out)
	}
}

func TestExitCodeMapping(t *testing.T) {
	if got := exitCode(errors.New("plain")); got != 1 {
		t.Errorf("plain error code = %d", got)
	}
	if got := exitCode(&exitError{code: 2, err: errors.New("broken")}); got != 2 {
		t.Errorf("exitError code = %d", got)
	}
}
