// Command fleetsim runs fleet-scale simulation experiments from
// declarative scenario configs: thousands of generated machine instances
// over simnet virtual time, driven by a seeded arrival process under a
// randomized fault schedule, with every delivery classified by the trace
// verdict vocabulary. The report (throughput, latency percentiles,
// per-verdict counts) is canonical JSON: the same scenario produces
// byte-identical reports, so checked-in golden reports are diffable in CI
// and any drift — or any unexpected violation — fails the gate.
//
// With -url the same scenario instead drives a live /v1 server: the
// arrival process schedules real render GETs and /check POSTs, replacing
// ad-hoc loadgen invocations with named, checked-in scenarios.
//
// Examples:
//
//	fleetsim -config examples/fleetsim/commit-churn.json
//	fleetsim -config examples/fleetsim/commit-churn.json -out report.json \
//	    -golden examples/fleetsim/golden/commit-churn.json
//	fleetsim -config examples/fleetsim/commit-churn.json -url http://localhost:8091
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"time"

	"asagen/internal/fleetsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	var (
		config   = fs.String("config", "", "scenario config `file` (required)")
		out      = fs.String("out", "", "write the canonical JSON report to this file")
		golden   = fs.String("golden", "", "compare the report byte-for-byte against this checked-in report")
		url      = fs.String("url", "", "drive live /v1 servers instead of the simulation (comma-separated list round-robins arrivals)")
		workers  = fs.Int("workers", runtime.NumCPU(), "bound on concurrently executing shards (simulation) or in-flight requests (live)")
		duration = fs.Int64("duration-ms", 0, "override the scenario's duration_ms")
		seed     = fs.Int64("seed", 0, "override the scenario's seed (live with seed 0 keeps the config's)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *config == "" {
		return fmt.Errorf("missing -config (scenario file)")
	}
	sc, err := fleetsim.Load(*config)
	if err != nil {
		return err
	}
	if *duration > 0 {
		sc.DurationMS = *duration
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	var rep *fleetsim.Report
	if *url != "" {
		rep, err = fleetsim.Live(ctx, sc, *url, *workers)
	} else {
		rep, err = fleetsim.Run(ctx, sc, *workers)
	}
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Fprintf(stdout, "fleetsim %s: scenario %s, model %s r=%d, %d instances, %d shards, seed %d (wall %v)\n",
		rep.Harness, sc.Name, rep.Machine.Model, rep.Machine.Param, sc.Instances, sc.Shards, sc.Seed, wall.Round(time.Millisecond))
	fmt.Fprintf(stdout, "fleet    born %d  finished %d  truncated %d  dead-end %d\n",
		rep.Fleet.Born, rep.Fleet.Finished, rep.Fleet.Truncated, rep.Fleet.DeadEnd)
	fmt.Fprintf(stdout, "events   %d judged, %.2f/s over %dms; violations %d expected, %d unexpected\n",
		rep.Events, rep.ThroughputPerSec, rep.VirtualMS, rep.ExpectedViolations, rep.UnexpectedViolations)
	fmt.Fprintf(stdout, "latency  delivery p50 %v p95 %v p99 %v; completion p50 %v p95 %v p99 %v\n",
		time.Duration(rep.Delivery.P50Ns), time.Duration(rep.Delivery.P95Ns), time.Duration(rep.Delivery.P99Ns),
		time.Duration(rep.Completion.P50Ns), time.Duration(rep.Completion.P95Ns), time.Duration(rep.Completion.P99Ns))

	data, err := rep.MarshalCanonical()
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	if *golden != "" {
		want, err := os.ReadFile(*golden)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, want) {
			return fmt.Errorf("report drifted from golden %s (regenerate with -out after verifying the change is intended)", *golden)
		}
		fmt.Fprintf(stdout, "report matches golden %s\n", *golden)
	}
	if rep.UnexpectedViolations > 0 {
		return fmt.Errorf("%d unexpected violations: generated machine and interpreter disagree", rep.UnexpectedViolations)
	}
	return nil
}
