package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeScenario drops a small fast scenario config into dir.
func writeScenario(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "scenario.json")
	cfg := `{
  "name": "cli-test",
  "model": "commit",
  "param": 4,
  "instances": 64,
  "shards": 4,
  "seed": 5,
  "duration_ms": 3000,
  "arrival": {"process": "constant", "rate_per_sec": 200},
  "faults": {"duplicate_rate": 0.05},
  "tolerance": 1
}
`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunWritesReport: the CLI runs a scenario, writes the report, and two
// invocations produce byte-identical files.
func TestRunWritesReport(t *testing.T) {
	dir := t.TempDir()
	cfg := writeScenario(t, dir)
	out1 := filepath.Join(dir, "a.json")
	out2 := filepath.Join(dir, "b.json")
	var stdout bytes.Buffer
	if err := run([]string{"-config", cfg, "-out", out1}, &stdout); err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "unexpected") {
		t.Errorf("summary missing violation line:\n%s", stdout.String())
	}
	if err := run([]string{"-config", cfg, "-out", out2}, &stdout); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(out1)
	b, _ := os.ReadFile(out2)
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatal("CLI runs with the same scenario wrote different report bytes")
	}
}

// TestRunGoldenGate: a matching golden passes, a drifted golden fails.
func TestRunGoldenGate(t *testing.T) {
	dir := t.TempDir()
	cfg := writeScenario(t, dir)
	golden := filepath.Join(dir, "golden.json")
	var stdout bytes.Buffer
	if err := run([]string{"-config", cfg, "-out", golden}, &stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", cfg, "-golden", golden}, &stdout); err != nil {
		t.Fatalf("matching golden failed the gate: %v", err)
	}
	// A different seed must trip the drift gate.
	err := run([]string{"-config", cfg, "-seed", "99", "-golden", golden}, &stdout)
	if err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Fatalf("drifted report passed the golden gate: %v", err)
	}
}

// TestRunUsageErrors: missing and broken configs are reported.
func TestRunUsageErrors(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(nil, &stdout); err == nil {
		t.Fatal("run without -config succeeded")
	}
	if err := run([]string{"-config", filepath.Join(t.TempDir(), "nope.json")}, &stdout); err == nil {
		t.Fatal("run with a missing config file succeeded")
	}
}
